/**
 * @file test_tree.cpp
 * Unit and property tests for LogicalLocation and BlockTree: Morton
 * algebra, 2:1 balance, exact covering, neighbor enumeration, and the
 * refinement-flag update pass.
 */
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "mesh/block_tree.hpp"
#include "mesh/logical_location.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace vibe {
namespace {

// --- LogicalLocation ---

TEST(LogicalLocation, ParentChildRoundTrip)
{
    const LogicalLocation loc{2, 3, 1, 2};
    for (int o3 = 0; o3 <= 1; ++o3)
        for (int o2 = 0; o2 <= 1; ++o2)
            for (int o1 = 0; o1 <= 1; ++o1) {
                const LogicalLocation kid = loc.child(o1, o2, o3);
                EXPECT_EQ(kid.level, 3);
                EXPECT_EQ(kid.parent(), loc);
                EXPECT_EQ(kid.childIndexInParent(),
                          o1 | (o2 << 1) | (o3 << 2));
            }
}

TEST(LogicalLocation, ParentOfRootPanics)
{
    EXPECT_THROW((LogicalLocation{0, 0, 0, 0}.parent()), PanicError);
}

TEST(LogicalLocation, ContainsSelfAndDescendants)
{
    const LogicalLocation loc{1, 1, 0, 1};
    EXPECT_TRUE(loc.contains(loc));
    EXPECT_TRUE(loc.contains(loc.child(1, 1, 0)));
    EXPECT_TRUE(loc.contains(loc.child(0, 0, 0).child(1, 0, 1)));
    EXPECT_FALSE(loc.contains(LogicalLocation{1, 0, 0, 1}));
    EXPECT_FALSE(loc.contains(loc.parent()));
}

TEST(LogicalLocation, MortonInterleaveKnownValues)
{
    EXPECT_EQ(mortonInterleave(0, 0, 0), 0u);
    EXPECT_EQ(mortonInterleave(1, 0, 0), 1u);
    EXPECT_EQ(mortonInterleave(0, 1, 0), 2u);
    EXPECT_EQ(mortonInterleave(0, 0, 1), 4u);
    EXPECT_EQ(mortonInterleave(1, 1, 1), 7u);
    EXPECT_EQ(mortonInterleave(2, 0, 0), 8u);
}

TEST(LogicalLocation, MortonKeyOrdersSiblingsByOctant)
{
    const LogicalLocation parent{0, 0, 0, 0};
    std::uint64_t prev = 0;
    bool first = true;
    for (int idx = 0; idx < 8; ++idx) {
        const auto kid =
            parent.child(idx & 1, (idx >> 1) & 1, (idx >> 2) & 1);
        const std::uint64_t key = kid.mortonKey(3);
        if (!first) {
            EXPECT_GT(key, prev);
        }
        prev = key;
        first = false;
    }
}

TEST(LogicalLocation, MortonKeyRequiresDeepEnoughReference)
{
    EXPECT_THROW((LogicalLocation{3, 0, 0, 0}.mortonKey(2)), PanicError);
}

TEST(LogicalLocation, HashDistinguishesLevels)
{
    LogicalLocationHash h;
    EXPECT_NE(h(LogicalLocation{0, 1, 0, 0}),
              h(LogicalLocation{1, 1, 0, 0}));
}

TEST(LogicalLocation, StrFormat)
{
    EXPECT_EQ((LogicalLocation{2, 3, 1, 0}.str()), "(L2: 3,1,0)");
}

// --- BlockTree basics ---

TreeConfig
cube(int nb, int max_level, int ndim = 3, bool periodic = true)
{
    TreeConfig config;
    config.ndim = ndim;
    config.nbx1 = nb;
    config.nbx2 = ndim >= 2 ? nb : 1;
    config.nbx3 = ndim >= 3 ? nb : 1;
    config.maxLevel = max_level;
    config.periodic1 = config.periodic2 = config.periodic3 = periodic;
    return config;
}

TEST(BlockTree, BaseGridLeafCount)
{
    BlockTree tree(cube(4, 2));
    EXPECT_EQ(tree.leafCount(), 64u);
    EXPECT_EQ(tree.maxPresentLevel(), 0);
    EXPECT_TRUE(tree.checkBalance());
}

TEST(BlockTree, RejectsBadConfig)
{
    TreeConfig config = cube(4, 2);
    config.ndim = 4;
    EXPECT_THROW(BlockTree{config}, PanicError);
    config = cube(4, 2);
    config.nbx1 = 0;
    EXPECT_THROW(BlockTree{config}, PanicError);
    config = cube(4, 2, 2);
    config.nbx3 = 3;
    EXPECT_THROW(BlockTree{config}, PanicError);
}

TEST(BlockTree, RefineSplitsInto8Children3D)
{
    BlockTree tree(cube(2, 2));
    tree.refine({0, 0, 0, 0});
    EXPECT_EQ(tree.leafCount(), 8u - 1u + 8u);
    EXPECT_FALSE(tree.isLeaf({0, 0, 0, 0}));
    EXPECT_TRUE(tree.exists({0, 0, 0, 0}));
    EXPECT_TRUE(tree.isLeaf({1, 1, 1, 1}));
    EXPECT_TRUE(tree.checkBalance());
}

TEST(BlockTree, RefineSplitsInto4Children2D)
{
    BlockTree tree(cube(2, 2, 2));
    tree.refine({0, 0, 0, 0});
    EXPECT_EQ(tree.leafCount(), 4u - 1u + 4u);
    EXPECT_TRUE(tree.checkBalance());
}

TEST(BlockTree, RefineSplitsInto2Children1D)
{
    BlockTree tree(cube(4, 2, 1));
    tree.refine({0, 1, 0, 0});
    EXPECT_EQ(tree.leafCount(), 4u - 1u + 2u);
    EXPECT_TRUE(tree.checkBalance());
}

TEST(BlockTree, RefineBeyondMaxLevelIsNoop)
{
    BlockTree tree(cube(2, 0));
    tree.refine({0, 0, 0, 0});
    EXPECT_EQ(tree.leafCount(), 8u);
}

TEST(BlockTree, RefineNonLeafIsNoop)
{
    BlockTree tree(cube(2, 2));
    tree.refine({0, 0, 0, 0});
    const std::size_t count = tree.leafCount();
    tree.refine({0, 0, 0, 0}); // now internal
    EXPECT_EQ(tree.leafCount(), count);
}

TEST(BlockTree, DerefineMergesChildren)
{
    BlockTree tree(cube(2, 2));
    tree.refine({0, 0, 0, 0});
    EXPECT_TRUE(tree.derefine({0, 0, 0, 0}));
    EXPECT_EQ(tree.leafCount(), 8u);
    EXPECT_TRUE(tree.isLeaf({0, 0, 0, 0}));
    EXPECT_TRUE(tree.checkBalance());
}

TEST(BlockTree, DerefineFailsWhenChildRefined)
{
    BlockTree tree(cube(2, 2));
    tree.refine({0, 0, 0, 0});
    tree.refine({1, 0, 0, 0});
    EXPECT_FALSE(tree.derefine({0, 0, 0, 0}));
    EXPECT_TRUE(tree.checkBalance());
}

TEST(BlockTree, TwoToOnePropagationOnRefine)
{
    // Refining twice in one corner forces neighbors of the L1 block to
    // refine so no L2 leaf touches an L0 leaf.
    BlockTree tree(cube(4, 3));
    tree.refine({0, 0, 0, 0});
    std::vector<LogicalLocation> refined;
    tree.refine({1, 0, 0, 0}, &refined);
    EXPECT_TRUE(tree.checkBalance());
    // The L2 children of (1;0,0,0) touch, across the periodic wrap,
    // regions covered by L0 leaves like (0;3,0,0): those must have
    // been split as part of balancing.
    EXPECT_FALSE(tree.isLeaf({0, 3, 0, 0}));
    EXPECT_GT(refined.size(), 1u);
}

TEST(BlockTree, DerefineBlockedByTwoToOne)
{
    BlockTree tree(cube(4, 3));
    tree.refine({0, 0, 0, 0});
    tree.refine({1, 0, 0, 0}); // forces neighbors of (0;0,0,0) to L1
    // Merging (0;0,0,0)'s children back would place an L0 leaf next to
    // the L2 leaves: must be refused.
    EXPECT_FALSE(tree.derefine({0, 0, 0, 0}));
    EXPECT_TRUE(tree.checkBalance());
}

// --- Neighbors ---

TEST(BlockTree, UniformNeighborCounts3D)
{
    BlockTree tree(cube(4, 1));
    // Periodic uniform mesh: every block has 26 neighbors.
    for (const auto& loc : tree.leavesZOrder())
        EXPECT_EQ(tree.neighbors(loc).size(), 26u) << loc.str();
}

TEST(BlockTree, UniformNeighborCounts2D)
{
    BlockTree tree(cube(4, 1, 2));
    for (const auto& loc : tree.leavesZOrder())
        EXPECT_EQ(tree.neighbors(loc).size(), 8u);
}

TEST(BlockTree, NonPeriodicCornerHasFewerNeighbors)
{
    BlockTree tree(cube(4, 1, 3, /*periodic=*/false));
    EXPECT_EQ(tree.neighbors({0, 0, 0, 0}).size(), 7u); // 3 faces,3 edges,1 corner
    EXPECT_EQ(tree.neighbors({0, 1, 1, 1}).size(), 26u);
}

TEST(BlockTree, NeighborSymmetrySameLevel)
{
    BlockTree tree(cube(4, 1));
    for (const auto& loc : tree.leavesZOrder()) {
        for (const auto& nb : tree.neighbors(loc)) {
            bool found = false;
            for (const auto& back : tree.neighbors(nb.loc))
                if (back.loc == loc)
                    found = true;
            EXPECT_TRUE(found) << loc.str() << " -> " << nb.loc.str();
        }
    }
}

TEST(BlockTree, FineNeighborsEnumeratedPerChild)
{
    BlockTree tree(cube(2, 2, 2)); // 2-D quadtree
    tree.refine({0, 1, 0, 0});
    // (0;0,0) sees the two touching children of (0;1,0) across +x.
    int fine_seen = 0;
    for (const auto& nb : tree.neighbors({0, 0, 0, 0}))
        if (nb.loc.level == 1 && nb.ox1 == 1 && nb.ox2 == 0)
            ++fine_seen;
    EXPECT_EQ(fine_seen, 2);
}

TEST(BlockTree, CoarseNeighborSeenFromFineSide)
{
    BlockTree tree(cube(2, 2, 2));
    tree.refine({0, 1, 0, 0});
    // Child (1;2,0) of (0;1,0) borders coarse leaf (0;0,0) across -x.
    bool coarse_found = false;
    for (const auto& nb : tree.neighbors({1, 2, 0, 0}))
        if (nb.loc == LogicalLocation{0, 0, 0, 0} && nb.ox1 == -1)
            coarse_found = true;
    EXPECT_TRUE(coarse_found);
}

TEST(BlockTree, CoveringLeafWalksUp)
{
    BlockTree tree(cube(2, 2));
    auto leaf = tree.coveringLeaf({2, 3, 3, 3});
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(*leaf, (LogicalLocation{0, 0, 0, 0}));
    EXPECT_FALSE(tree.coveringLeaf({0, 5, 0, 0}).has_value());
}

TEST(BlockTree, ZOrderIsDeterministicAndComplete)
{
    BlockTree tree(cube(2, 2));
    tree.refine({0, 1, 1, 1});
    const auto order1 = tree.leavesZOrder();
    const auto order2 = tree.leavesZOrder();
    EXPECT_EQ(order1, order2);
    EXPECT_EQ(order1.size(), tree.leafCount());
    std::set<std::pair<int, std::int64_t>> unique;
    for (const auto& loc : order1)
        unique.insert({loc.level, loc.mortonKey(3)});
    EXPECT_EQ(unique.size(), order1.size());
}

TEST(BlockTree, LogicalLevelOffset)
{
    EXPECT_EQ(BlockTree(cube(4, 0)).logicalLevelOffset(), 2);
    // Fig. 2: a 5x4 base grid needs 3 doublings of a single root.
    TreeConfig config;
    config.ndim = 2;
    config.nbx1 = 5;
    config.nbx2 = 4;
    config.nbx3 = 1;
    config.maxLevel = 2;
    EXPECT_EQ(BlockTree(config).logicalLevelOffset(), 3);
}

// --- update() ---

TEST(BlockTreeUpdate, RefinesFlaggedLeaves)
{
    BlockTree tree(cube(4, 2));
    RefinementFlagMap flags;
    flags[{0, 0, 0, 0}] = RefinementFlag::Refine;
    flags[{0, 3, 3, 3}] = RefinementFlag::Refine;
    auto result = tree.update(flags);
    EXPECT_EQ(result.refined.size(), 2u);
    EXPECT_TRUE(result.derefined.empty());
    EXPECT_TRUE(tree.checkBalance());
}

TEST(BlockTreeUpdate, DerefinesFullSiblingSets)
{
    BlockTree tree(cube(4, 2));
    tree.refine({0, 0, 0, 0});
    RefinementFlagMap flags;
    for (int idx = 0; idx < 8; ++idx)
        flags[LogicalLocation{0, 0, 0, 0}.child(idx & 1, (idx >> 1) & 1,
                                                (idx >> 2) & 1)] =
            RefinementFlag::Derefine;
    auto result = tree.update(flags);
    EXPECT_EQ(result.derefined.size(), 1u);
    EXPECT_TRUE(tree.isLeaf({0, 0, 0, 0}));
    EXPECT_TRUE(tree.checkBalance());
}

TEST(BlockTreeUpdate, PartialSiblingFlagsDoNotMerge)
{
    BlockTree tree(cube(4, 2));
    tree.refine({0, 0, 0, 0});
    RefinementFlagMap flags;
    flags[LogicalLocation{0, 0, 0, 0}.child(0, 0, 0)] =
        RefinementFlag::Derefine;
    auto result = tree.update(flags);
    EXPECT_TRUE(result.derefined.empty());
}

TEST(BlockTreeUpdate, RefineWinsOverDerefineInSameSet)
{
    BlockTree tree(cube(4, 2));
    tree.refine({0, 0, 0, 0});
    RefinementFlagMap flags;
    for (int idx = 0; idx < 8; ++idx)
        flags[LogicalLocation{0, 0, 0, 0}.child(idx & 1, (idx >> 1) & 1,
                                                (idx >> 2) & 1)] =
            RefinementFlag::Derefine;
    // One sibling also wants to refine: the set must not merge.
    flags[LogicalLocation{0, 0, 0, 0}.child(0, 0, 0)] =
        RefinementFlag::Refine;
    auto result = tree.update(flags);
    EXPECT_TRUE(result.derefined.empty());
    // The refine went through (plus any 2:1 propagation splits).
    EXPECT_GE(result.refined.size(), 1u);
    EXPECT_FALSE(tree.isLeaf(LogicalLocation{0, 0, 0, 0}.child(0, 0, 0)));
    EXPECT_TRUE(tree.checkBalance());
}

TEST(BlockTreeUpdate, MaxLevelCapsRefinement)
{
    BlockTree tree(cube(2, 1));
    tree.refine({0, 0, 0, 0});
    RefinementFlagMap flags;
    flags[{1, 0, 0, 0}] = RefinementFlag::Refine; // already at cap
    auto result = tree.update(flags);
    EXPECT_TRUE(result.refined.empty());
}

// --- Property test: random refine/derefine storms keep invariants ---

class BlockTreeFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(BlockTreeFuzz, RandomUpdatesPreserveBalanceAndCovering)
{
    Rng rng(GetParam());
    BlockTree tree(cube(4, 3));
    for (int round = 0; round < 12; ++round) {
        RefinementFlagMap flags;
        const auto leaves = tree.leavesZOrder();
        for (const auto& loc : leaves) {
            const double p = rng.uniform();
            if (p < 0.15)
                flags[loc] = RefinementFlag::Refine;
            else if (p < 0.45)
                flags[loc] = RefinementFlag::Derefine;
        }
        tree.update(flags);
        ASSERT_TRUE(tree.checkBalance()) << "round " << round;
        // Exact covering: leaf volumes at reference resolution sum to
        // the domain volume.
        std::uint64_t volume = 0;
        tree.forEachLeaf([&](const LogicalLocation& loc) {
            const int shift = 3 * (3 - loc.level);
            volume += std::uint64_t{1} << shift;
        });
        EXPECT_EQ(volume, 64ull * 512ull);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockTreeFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace vibe
