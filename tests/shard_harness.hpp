/**
 * @file shard_harness.hpp
 * Shared workload + capture/compare harness for the rank-shard and
 * boundary-plan equivalence tests.
 *
 * The workload (16^3 mesh, 8^3 blocks, 2 levels, an off-center fast
 * moving shell) refines AND derefines within a few cycles (mid-run
 * remeshes), which unbalances the Z-order partition and forces real
 * block migrations at the per-cycle load balance — so every run
 * exercises cache rebuilds, plan invalidation, and true storage
 * movement, not just steady-state exchange.
 *
 * The boundary path defaults to the CI matrix's VIBE_FUSED_BOUNDARIES
 * (fused when unset); tests that sweep per-face vs fused pass the
 * knob explicitly.
 */
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "driver/rank_team.hpp"
#include "driver/tagger.hpp"
#include "exec/execution_space.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "pkg/package_registry.hpp"

namespace vibe {
namespace shard_test {

inline MeshConfig
shardMeshConfig(int num_ranks, int num_threads, bool pack_interior,
                bool fused = envFusedBoundaries(true))
{
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 2;
    config.numThreads = num_threads;
    config.numRanks = num_ranks;
    config.packInterior = pack_interior;
    config.fusedBoundaries = fused;
    return config;
}

inline SphericalWaveTagger::Params
shardWaveParams()
{
    SphericalWaveTagger::Params wave;
    wave.cx = wave.cy = wave.cz = 0.28;
    wave.rMin = 0.08;
    wave.rMax = 0.35;
    wave.speed = 40.0;
    return wave;
}

inline DriverConfig
shardDriverConfig(int lb_every = 1)
{
    DriverConfig config;
    config.ncycles = 8;
    config.derefineGap = 2;
    config.lbEvery = lb_every;
    // Like the boundary path, the cost source sweeps with the CI
    // matrix: mesh state must be bitwise identical either way.
    config.lbCost = envLbCostMode(LbCostMode::Uniform);
    return config;
}

inline std::unique_ptr<PackageDescriptor>
makePackage(const std::string& name)
{
    ParameterInput pin;
    return PackageRegistry::instance().create(name, pin);
}

/** Everything a run produces that equivalence must pin down. */
struct ShardRun
{
    std::vector<std::string> locs;
    std::vector<std::vector<double>> cons;
    std::vector<std::vector<double>> derived;
    std::vector<double> dts;
    std::vector<double> masses;
    std::int64_t remeshEvents = 0;
    int movedBlocks = 0;
    double migratedBytes = 0;
};

inline void
captureHistory(const std::vector<CycleStats>& history, ShardRun* out)
{
    for (const CycleStats& stats : history) {
        out->dts.push_back(stats.dt);
        out->masses.push_back(stats.mass);
        out->remeshEvents += stats.refined + stats.derefined;
        out->movedBlocks += stats.movedBlocks;
        out->migratedBytes += stats.migratedStorageBytes;
    }
}

inline void
captureBlock(const MeshBlock& block, ShardRun* out)
{
    out->locs.push_back(block.loc().str());
    const RealArray4& cons = block.cons();
    out->cons.emplace_back(cons.data(), cons.data() + cons.size());
    const RealArray4& derived = block.derived();
    out->derived.emplace_back(derived.data(),
                              derived.data() + derived.size());
}

/** Classic single-driver run (the 1-rank baseline). */
inline ShardRun
runClassic(const std::string& package_name, int num_threads,
           int lb_every = 1, bool pack_interior = false,
           bool fused = envFusedBoundaries(true))
{
    auto package = makePackage(package_name);
    VariableRegistry registry = package->buildRegistry();
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(num_threads));
    Mesh mesh(shardMeshConfig(1, num_threads, pack_interior, fused),
              registry, ctx);
    RankWorld world(1);
    SphericalWaveTagger tagger(shardWaveParams());
    EvolutionDriver driver(mesh, *package, world, tagger,
                           shardDriverConfig(lb_every));
    driver.initialize();
    driver.run();

    ShardRun out;
    captureHistory(driver.history(), &out);
    for (const auto& block : mesh.blocks())
        captureBlock(*block, &out);
    return out;
}

/** Rank-team run; state gathered from each block's owner replica. */
inline ShardRun
runTeam(const std::string& package_name, int num_ranks, int num_threads,
        int lb_every = 1, bool pack_interior = false,
        bool fused = envFusedBoundaries(true))
{
    auto package = makePackage(package_name);
    VariableRegistry registry = package->buildRegistry();
    RankTeam team(
        shardMeshConfig(num_ranks, num_threads, pack_interior, fused),
        registry, *package, shardDriverConfig(lb_every), [](int) {
            return std::make_unique<SphericalWaveTagger>(
                shardWaveParams());
        });
    team.run();

    ShardRun out;
    captureHistory(team.aggregatedHistory(), &out);
    // Rank-view consistency: every replica's by-rank query agrees with
    // its cached owned view, and the shards partition the mesh.
    std::size_t shard_total = 0;
    for (int r = 0; r < team.numRanks(); ++r) {
        const auto by_rank = team.mesh(r).ownedBlocks(r);
        EXPECT_EQ(by_rank, team.mesh(r).ownedBlocks())
            << "rank " << r << " by-rank query vs cached owned view";
        shard_total += by_rank.size();
    }
    EXPECT_EQ(shard_total, team.mesh(0).numBlocks());
    for (const auto& block : team.mesh(0).blocks()) {
        const int owner = block->rank();
        MeshBlock* owned = team.ownedBlock(block->loc());
        EXPECT_NE(owned, nullptr);
        EXPECT_EQ(owned->rank(), owner);
        // Ownership invariant: exactly the owner replica holds
        // storage; every other replica sees a storage-less Shadow, so
        // cross-rank reads are structurally impossible.
        for (int r = 0; r < team.numRanks(); ++r) {
            MeshBlock* replica = team.mesh(r).find(block->loc());
            if (replica == nullptr) {
                ADD_FAILURE() << "rank " << r << " replica missing "
                              << block->loc().str();
                continue;
            }
            EXPECT_EQ(replica->hasData(), r == owner)
                << block->loc().str() << " replica on rank " << r;
            EXPECT_EQ(replica->rank(), owner);
        }
        captureBlock(*owned, &out);
    }
    return out;
}

inline void
expectBitwiseEqual(const ShardRun& a, const ShardRun& b,
                   const std::string& what)
{
    ASSERT_EQ(a.locs, b.locs) << what;
    ASSERT_EQ(a.dts.size(), b.dts.size()) << what;
    for (std::size_t c = 0; c < a.dts.size(); ++c) {
        EXPECT_EQ(a.dts[c], b.dts[c]) << what << ", dt cycle " << c;
        EXPECT_EQ(a.masses[c], b.masses[c])
            << what << ", mass cycle " << c;
    }
    ASSERT_EQ(a.cons.size(), b.cons.size()) << what;
    for (std::size_t blk = 0; blk < a.cons.size(); ++blk) {
        ASSERT_EQ(a.cons[blk].size(), b.cons[blk].size());
        EXPECT_EQ(std::memcmp(a.cons[blk].data(), b.cons[blk].data(),
                              a.cons[blk].size() * sizeof(double)),
                  0)
            << what << ", block " << a.locs[blk];
        ASSERT_EQ(a.derived[blk].size(), b.derived[blk].size());
        EXPECT_EQ(std::memcmp(a.derived[blk].data(),
                              b.derived[blk].data(),
                              a.derived[blk].size() * sizeof(double)),
                  0)
            << what << " (derived), block " << a.locs[blk];
    }
}

} // namespace shard_test
} // namespace vibe
