/**
 * @file test_mesh.cpp
 * Tests for variables, MeshBlock allocation/accounting, Mesh
 * construction, geometry, neighbor lists and AMR restructuring.
 */
#include <gtest/gtest.h>

#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "mesh/mesh.hpp"
#include "mesh/variable.hpp"
#include "pkg/burgers_package.hpp"
#include "util/logging.hpp"

namespace vibe {
namespace {

// --- VariableRegistry ---

TEST(VariableRegistry, BurgersLayout)
{
    auto reg = makeBurgersRegistry(8);
    EXPECT_EQ(reg.ncompConserved(), 11); // 3 + num_scalar (paper §VIII-B)
    EXPECT_EQ(reg.ncompDerived(), 1);
    EXPECT_EQ(reg.offsetOf("u"), 0);
    EXPECT_EQ(reg.offsetOf("q"), 3);
    EXPECT_EQ(reg.offsetOf("d"), 0); // derived pack
}

TEST(VariableRegistry, PackByFlags)
{
    auto reg = makeBurgersRegistry(4);
    const auto& pack = reg.packByFlags(kIndependent | kWithFluxes);
    EXPECT_EQ(pack.ncompTotal, 7);
    ASSERT_EQ(pack.entries.size(), 2u);
    EXPECT_EQ(pack.entries[0].name, "u");
    EXPECT_EQ(pack.entries[1].offset, 3);
}

TEST(VariableRegistry, PackCacheAvoidsRescan)
{
    auto reg = makeBurgersRegistry(4);
    reg.packByFlags(kIndependent);
    const auto compares = reg.stringCompares();
    reg.packByFlags(kIndependent); // cached
    EXPECT_EQ(reg.stringCompares(), compares);
    EXPECT_EQ(reg.lookupCalls(), 2u);
}

TEST(VariableRegistry, ByNameCountsCompares)
{
    auto reg = makeBurgersRegistry(4);
    reg.byName("q");
    EXPECT_GE(reg.stringCompares(), 2u);
    EXPECT_THROW(reg.byName("nope"), FatalError);
}

TEST(VariableRegistry, RejectsDuplicatesAndBadFlags)
{
    VariableRegistry reg;
    reg.add({"a", 1, kIndependent});
    EXPECT_THROW(reg.add({"a", 1, kIndependent}), FatalError);
    EXPECT_THROW(reg.add({"b", 1, kIndependent | kDerived}), PanicError);
    EXPECT_THROW(reg.add({"c", 0, kIndependent}), PanicError);
}

// --- BlockShape ---

TEST(BlockShape, IndexHelpers3D)
{
    BlockShape s;
    s.ndim = 3;
    s.nx1 = s.nx2 = s.nx3 = 16;
    s.ng = 4;
    EXPECT_EQ(s.ni(), 24);
    EXPECT_EQ(s.is(), 4);
    EXPECT_EQ(s.ie(), 19);
    EXPECT_EQ(s.interiorCells(), 4096);
    EXPECT_EQ(s.totalCells(), 24 * 24 * 24);
}

TEST(BlockShape, IndexHelpers1D)
{
    BlockShape s;
    s.ndim = 1;
    s.nx1 = 8;
    s.ng = 4;
    EXPECT_EQ(s.nj(), 1);
    EXPECT_EQ(s.nk(), 1);
    EXPECT_EQ(s.js(), 0);
    EXPECT_EQ(s.je(), 0);
    EXPECT_EQ(s.interiorCells(), 8);
}

// --- MeshConfig ---

TEST(MeshConfig, ValidatesDivisibility)
{
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 60;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 16;
    EXPECT_THROW(config.validate(), FatalError);
}

TEST(MeshConfig, FromParams)
{
    auto pin = ParameterInput::fromString(R"(
<mesh>
nx1 = 64
<meshblock>
nx1 = 16
<amr>
num_levels = 2
)");
    auto config = MeshConfig::fromParams(pin);
    EXPECT_EQ(config.nx1, 64);
    EXPECT_EQ(config.nx2, 64); // defaults to nx1
    EXPECT_EQ(config.blockNx1, 16);
    EXPECT_EQ(config.amrLevels, 2);
    EXPECT_EQ(config.treeConfig().maxLevel, 1);
    EXPECT_EQ(config.nbx1(), 4);
}

// --- MeshBlock allocation & memory accounting ---

struct MeshFixtureBits
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry = makeBurgersRegistry(8);
};

TEST(MeshBlock, RealModeAllocatesArrays)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Execute, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    Mesh mesh(config, bits.registry, ctx);
    MeshBlock& block = mesh.block(0);
    EXPECT_TRUE(block.hasData());
    EXPECT_EQ(block.cons().nvar(), 11);
    EXPECT_EQ(block.cons().ni(), 16); // 8 + 2*4 ghosts
    EXPECT_EQ(block.flux(0).ni(), 17);
    EXPECT_EQ(block.flux(2).nk(), 17);
    ASSERT_NE(block.reconL(0), nullptr);
    EXPECT_GT(bits.tracker.currentBytes(), 0u);
}

TEST(MeshBlock, VirtualModeAccountsSameBytes)
{
    MeshFixtureBits real_bits, virt_bits;
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    {
        ExecContext ctx(ExecMode::Execute, &real_bits.profiler,
                        &real_bits.tracker);
        Mesh mesh(config, real_bits.registry, ctx);
        ExecContext vctx(ExecMode::Count, &virt_bits.profiler,
                         &virt_bits.tracker);
        Mesh vmesh(config, virt_bits.registry, vctx);
        EXPECT_FALSE(vmesh.block(0).hasData());
        EXPECT_TRUE(vmesh.block(0).cons().empty());
        EXPECT_EQ(real_bits.tracker.currentBytes(),
                  virt_bits.tracker.currentBytes());
        EXPECT_EQ(real_bits.tracker.currentBytes(),
                  virt_bits.tracker.peakBytes());
    }
    // Blocks released on mesh destruction.
    EXPECT_EQ(real_bits.tracker.currentBytes(), 0u);
    EXPECT_EQ(virt_bits.tracker.currentBytes(), 0u);
}

TEST(MeshBlock, AuxReconMatchesPaperFormulaPerBlock)
{
    // §VIII-B: per block, aux = B x 6 x (nx1+2ng)^3 x (3+num_scalar)
    // with nx1 = 8, ng = 4, num_scalar = 8 -> 2,162,688 bytes.
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    Mesh mesh(config, bits.registry, ctx);
    EXPECT_EQ(bits.tracker.labelBytes("mesh/recon") / mesh.numBlocks(),
              8u * 6u * 16u * 16u * 16u * 11u);
}

TEST(MeshBlock, OptimizedLayoutDropsPerBlockRecon)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 64;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    config.optimizeAuxMemory = true;
    Mesh mesh(config, bits.registry, ctx);
    EXPECT_EQ(bits.tracker.labelBytes("mesh/recon"), 0u);
    EXPECT_GT(bits.tracker.labelBytes("mesh/recon_pool"), 0u);
    // Pool is independent of block count: 512 blocks share it, so it
    // is far below the per-block layout's footprint.
    EXPECT_LT(bits.tracker.labelBytes("mesh/recon_pool"),
              512u * 8u * 6u * 16u * 16u * 16u * 11u);
}

// --- Mesh geometry & neighbors ---

TEST(Mesh, GeometryPartitionsDomain)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 16;
    config.amrLevels = 1;
    Mesh mesh(config, bits.registry, ctx);
    ASSERT_EQ(mesh.numBlocks(), 8u);
    const auto geom = mesh.geometryFor({0, 1, 0, 0});
    EXPECT_DOUBLE_EQ(geom.x1min, 0.5);
    EXPECT_DOUBLE_EQ(geom.x1max, 1.0);
    EXPECT_DOUBLE_EQ(geom.dx1, 0.5 / 16);
    // Finer level halves the extent.
    const auto fine = mesh.geometryFor({1, 2, 0, 0});
    EXPECT_DOUBLE_EQ(fine.x1min, 0.5);
    EXPECT_DOUBLE_EQ(fine.x1max, 0.75);
}

TEST(Mesh, CellCentersNest)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 2;
    Mesh mesh(config, bits.registry, ctx);
    const auto coarse = mesh.geometryFor({0, 0, 0, 0});
    const auto fine = mesh.geometryFor({1, 0, 0, 0});
    // Two fine cells tile each coarse cell exactly.
    EXPECT_DOUBLE_EQ(coarse.dx1, 2 * fine.dx1);
    EXPECT_NEAR(coarse.x1c(0), 0.5 * (fine.x1c(0) + fine.x1c(1)), 1e-15);
}

TEST(Mesh, ZOrderGidsMatchTree)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    Mesh mesh(config, bits.registry, ctx);
    const auto order = mesh.tree().leavesZOrder();
    for (std::size_t g = 0; g < mesh.numBlocks(); ++g)
        EXPECT_EQ(mesh.block(static_cast<int>(g)).loc(), order[g]);
}

TEST(Mesh, NeighborListsMatchTreeCounts)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    Mesh mesh(config, bits.registry, ctx);
    for (const auto& block : mesh.blocks())
        EXPECT_EQ(mesh.neighbors(block->gid()).size(), 26u);
    EXPECT_EQ(mesh.totalNeighborLinks(), 26u * mesh.numBlocks());
}

TEST(Mesh, RestructureRefine)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 2;
    Mesh mesh(config, bits.registry, ctx);
    const std::size_t before = mesh.numBlocks();

    RefinementFlagMap flags;
    flags[{0, 0, 0, 0}] = RefinementFlag::Refine;
    auto update = mesh.updateTree(flags);
    auto restructure = mesh.applyTreeUpdate(update, 5);

    EXPECT_EQ(mesh.numBlocks(), before - 1 + 8);
    ASSERT_EQ(restructure.refined.size(), 1u);
    EXPECT_EQ(restructure.refined[0].children.size(), 8u);
    for (MeshBlock* child : restructure.refined[0].children) {
        EXPECT_EQ(child->createdCycle(), 5);
        EXPECT_EQ(child->rank(),
                  restructure.refined[0].parent->rank());
    }
    // gids renumbered consecutively.
    for (std::size_t g = 0; g < mesh.numBlocks(); ++g)
        EXPECT_EQ(mesh.block(static_cast<int>(g)).gid(),
                  static_cast<int>(g));
}

TEST(Mesh, RestructureDerefine)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 2;
    Mesh mesh(config, bits.registry, ctx);
    RefinementFlagMap flags;
    flags[{0, 0, 0, 0}] = RefinementFlag::Refine;
    mesh.applyTreeUpdate(mesh.updateTree(flags), 0);
    const std::size_t refined_count = mesh.numBlocks();

    RefinementFlagMap deref;
    for (int idx = 0; idx < 8; ++idx)
        deref[LogicalLocation{0, 0, 0, 0}.child(
            idx & 1, (idx >> 1) & 1, (idx >> 2) & 1)] =
            RefinementFlag::Derefine;
    auto restructure = mesh.applyTreeUpdate(mesh.updateTree(deref), 9);
    EXPECT_EQ(mesh.numBlocks(), refined_count - 8 + 1);
    ASSERT_EQ(restructure.derefined.size(), 1u);
    EXPECT_EQ(restructure.derefined[0].children.size(), 8u);
    EXPECT_EQ(restructure.derefined[0].parent->createdCycle(), 9);
}

TEST(Mesh, TrackerFollowsRestructure)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 2;
    Mesh mesh(config, bits.registry, ctx);
    const std::size_t base_bytes = bits.tracker.currentBytes();
    const std::size_t per_block = base_bytes / mesh.numBlocks();

    RefinementFlagMap flags;
    flags[{0, 0, 0, 0}] = RefinementFlag::Refine;
    {
        auto restructure =
            mesh.applyTreeUpdate(mesh.updateTree(flags), 0);
        // Parent still alive inside the restructure record.
        EXPECT_EQ(bits.tracker.currentBytes(),
                  base_bytes + 8 * per_block);
    }
    // Parent released with the record.
    EXPECT_EQ(bits.tracker.currentBytes(), base_bytes + 7 * per_block);
}

TEST(Mesh, TotalInteriorCells)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 16;
    config.amrLevels = 1;
    Mesh mesh(config, bits.registry, ctx);
    EXPECT_EQ(mesh.totalInteriorCells(), 32 * 32 * 32);
}

TEST(Mesh, FindByLocation)
{
    MeshFixtureBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 32;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 16;
    config.amrLevels = 1;
    Mesh mesh(config, bits.registry, ctx);
    ASSERT_NE(mesh.find({0, 1, 1, 0}), nullptr);
    EXPECT_EQ(mesh.find({0, 1, 1, 0})->loc(),
              (LogicalLocation{0, 1, 1, 0}));
    EXPECT_EQ(mesh.find({1, 0, 0, 0}), nullptr);
}

} // namespace
} // namespace vibe
