/**
 * @file test_exec.cpp
 * Tests for the instrumented execution layer: parFor modes, the kernel
 * profiler's aggregation and phase/rank attribution, and the memory
 * tracker.
 */
#include <gtest/gtest.h>

#include "exec/exec_context.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "exec/par_for.hpp"
#include "util/logging.hpp"

namespace vibe {
namespace {

TEST(ParFor, ExecutesBodyInExecuteMode)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Execute, &profiler, nullptr);
    int sum = 0;
    parFor(ctx, "k", {1.0, 8.0}, 0, 9, [&](int i) { sum += i; });
    EXPECT_EQ(sum, 45);
}

TEST(ParFor, SkipsBodyInCountMode)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Count, &profiler, nullptr);
    int sum = 0;
    parFor(ctx, "k", {1.0, 8.0}, 0, 9, [&](int i) { sum += i; });
    EXPECT_EQ(sum, 0);
    // ...but the work is still recorded.
    EXPECT_DOUBLE_EQ(profiler.kernelByName("k").items, 10.0);
}

TEST(ParFor, RecordsIdenticalWorkInBothModes)
{
    for (ExecMode mode : {ExecMode::Execute, ExecMode::Count}) {
        KernelProfiler profiler;
        ExecContext ctx(mode, &profiler, nullptr);
        parFor(ctx, "k3", {2.0, 16.0}, 0, 3, 0, 4, 0, 5,
               [](int, int, int) {});
        const auto stats = profiler.kernelByName("k3");
        EXPECT_DOUBLE_EQ(stats.items, 4.0 * 5.0 * 6.0);
        EXPECT_DOUBLE_EQ(stats.flops, 2.0 * 120.0);
        EXPECT_DOUBLE_EQ(stats.bytes, 16.0 * 120.0);
        EXPECT_DOUBLE_EQ(stats.avgInnermost(), 6.0);
        EXPECT_EQ(stats.launches, 1u);
    }
}

TEST(ParFor, FourDimensionalVariant)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Execute, &profiler, nullptr);
    int count = 0;
    parFor(ctx, "k4", {}, 0, 1, 0, 1, 0, 1, 0, 1,
           [&](int, int, int, int) { ++count; });
    EXPECT_EQ(count, 16);
    EXPECT_DOUBLE_EQ(profiler.kernelByName("k4").items, 16.0);
}

TEST(ParFor, EmptyRangeRecordsZeroItems)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Execute, &profiler, nullptr);
    parFor(ctx, "empty", {}, 5, 4, [](int) { FAIL(); });
    EXPECT_DOUBLE_EQ(profiler.kernelByName("empty").items, 0.0);
}

TEST(Profiler, PhaseAttribution)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Count, &profiler, nullptr);
    {
        PhaseScope scope(&profiler, "CalculateFluxes");
        parFor(ctx, "k", {}, 0, 0, [](int) {});
        {
            PhaseScope inner(&profiler, "SendBoundBufs");
            parFor(ctx, "k", {}, 0, 0, [](int) {});
        }
        parFor(ctx, "k", {}, 0, 0, [](int) {});
    }
    EXPECT_DOUBLE_EQ(
        profiler.kernels().at({"CalculateFluxes", "k"}).items, 2.0);
    EXPECT_DOUBLE_EQ(profiler.kernels().at({"SendBoundBufs", "k"}).items,
                     1.0);
}

TEST(Profiler, RankAttribution)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Count, &profiler, nullptr);
    ctx.setCurrentRank(2);
    parFor(ctx, "k", {}, 0, 9, [](int) {});
    ctx.setCurrentRank(5);
    parFor(ctx, "k", {}, 0, 4, [](int) {});
    const auto stats = profiler.kernelByName("k");
    EXPECT_DOUBLE_EQ(stats.itemsByRank.at(2), 10.0);
    EXPECT_DOUBLE_EQ(stats.itemsByRank.at(5), 5.0);
}

TEST(Profiler, SerialRecordsAggregate)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Count, &profiler, nullptr);
    PhaseScope scope(&profiler, "SendBoundBufs");
    recordSerial(ctx, "bound_buf_metadata", 10);
    recordSerial(ctx, "bound_buf_metadata", 5);
    EXPECT_DOUBLE_EQ(profiler.serialByCategory("bound_buf_metadata"),
                     15.0);
    EXPECT_DOUBLE_EQ(
        profiler.serial().at({"SendBoundBufs", "bound_buf_metadata"})
            .items,
        15.0);
}

TEST(Profiler, TotalsAndReset)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Count, &profiler, nullptr);
    parFor(ctx, "a", {}, 0, 9, [](int) {});
    parFor(ctx, "b", {}, 0, 4, [](int) {});
    EXPECT_DOUBLE_EQ(profiler.totalItems(), 15.0);
    EXPECT_EQ(profiler.totalLaunches(), 2u);
    profiler.reset();
    EXPECT_DOUBLE_EQ(profiler.totalItems(), 0.0);
    EXPECT_EQ(profiler.phase(), "Initialise");
}

TEST(Profiler, RecordKernelHelper)
{
    KernelProfiler profiler;
    ExecContext ctx(ExecMode::Count, &profiler, nullptr);
    recordKernel(ctx, "pack", 100.0, {0.5, 4.0}, 16.0);
    const auto stats = profiler.kernelByName("pack");
    EXPECT_DOUBLE_EQ(stats.items, 100.0);
    EXPECT_DOUBLE_EQ(stats.flops, 50.0);
    EXPECT_DOUBLE_EQ(stats.bytes, 400.0);
    EXPECT_DOUBLE_EQ(stats.avgInnermost(), 16.0);
}

TEST(MemoryTracker, AllocateDeallocate)
{
    MemoryTracker tracker;
    tracker.allocate("a", 100);
    tracker.allocate("b", 50);
    tracker.allocate("a", 25);
    EXPECT_EQ(tracker.currentBytes(), 175u);
    EXPECT_EQ(tracker.labelBytes("a"), 125u);
    tracker.deallocate("a", 100);
    EXPECT_EQ(tracker.currentBytes(), 75u);
    EXPECT_EQ(tracker.peakBytes(), 175u);
    EXPECT_EQ(tracker.labelPeakBytes("a"), 125u);
    EXPECT_EQ(tracker.allocationCalls(), 3u);
}

TEST(MemoryTracker, UnderflowPanics)
{
    MemoryTracker tracker;
    tracker.allocate("a", 10);
    EXPECT_THROW(tracker.deallocate("a", 20), PanicError);
    EXPECT_THROW(tracker.deallocate("missing", 1), PanicError);
}

TEST(MemoryTracker, ResetClearsEverything)
{
    MemoryTracker tracker;
    tracker.allocate("a", 10);
    tracker.reset();
    EXPECT_EQ(tracker.currentBytes(), 0u);
    EXPECT_EQ(tracker.peakBytes(), 0u);
    EXPECT_EQ(tracker.allocationCalls(), 0u);
}

TEST(ExecContext, ModeAndInstrumentation)
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker);
    EXPECT_TRUE(ctx.executing());
    EXPECT_EQ(ctx.profiler(), &profiler);
    EXPECT_EQ(ctx.tracker(), &tracker);
    ExecContext counting(ExecMode::Count, nullptr, nullptr);
    EXPECT_FALSE(counting.executing());
}

} // namespace
} // namespace vibe
