/**
 * @file test_checkpoint.cpp
 * Elastic checkpoint/restart and fault-recovery tests: bitwise
 * continuation across rank/thread counts, the reader's corruption
 * taxonomy, decomposition-invariant bytes, injected rank death with
 * supervised recovery, and the abort path's original-message guarantee.
 */
#include "shard_harness.hpp"

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "driver/fault_injector.hpp"
#include "driver/task_list.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_writer.hpp"
#include "util/logging.hpp"

namespace vibe {
namespace {

using shard_test::captureBlock;
using shard_test::captureHistory;
using shard_test::expectBitwiseEqual;
using shard_test::makePackage;
using shard_test::runClassic;
using shard_test::shardDriverConfig;
using shard_test::shardMeshConfig;
using shard_test::shardWaveParams;
using shard_test::ShardRun;

/** Self-cleaning checkpoint file in the test working directory. */
struct TempFile
{
    std::string path;
    explicit TempFile(std::string name) : path(std::move(name)) {}
    ~TempFile() { std::remove(path.c_str()); }
};

std::vector<std::uint8_t>
readFileBytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string& path,
               const std::vector<std::uint8_t>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** First half of the run: 4 cycles, one checkpoint at cycle 4. */
DriverConfig
writeConfig(int lb_every = 1)
{
    DriverConfig config = shardDriverConfig(lb_every);
    config.ncycles = 4;
    config.checkpointEvery = 4;
    return config;
}

/** Team run that leaves a checkpoint file behind. */
void
writeTeamCheckpoint(const std::string& package_name, int num_ranks,
                    const DriverConfig& config, const std::string& path,
                    bool async = true)
{
    auto package = makePackage(package_name);
    VariableRegistry registry = package->buildRegistry();
    CheckpointWriter writer(path, async);
    RankTeam team(shardMeshConfig(num_ranks, 1, false), registry,
                  *package, config, [](int) {
                      return std::make_unique<SphericalWaveTagger>(
                          shardWaveParams());
                  });
    team.setCheckpointWriter(&writer);
    team.run();
    writer.finish();
    EXPECT_EQ(writer.snapshots(), 1u) << path;
}

/** Restore `image` into a fresh team and evolve to config.ncycles. */
ShardRun
restoreTeamAndRun(const std::string& package_name,
                  const CheckpointImage& image, int num_ranks,
                  int num_threads, const DriverConfig& config)
{
    auto package = makePackage(package_name);
    VariableRegistry registry = package->buildRegistry();
    RankTeam team(shardMeshConfig(num_ranks, num_threads, false),
                  registry, *package, config, [](int) {
                      return std::make_unique<SphericalWaveTagger>(
                          shardWaveParams());
                  });
    team.setRestoreImage(&image);
    team.run();

    ShardRun out;
    captureHistory(team.aggregatedHistory(), &out);
    for (const auto& block : team.mesh(0).blocks()) {
        MeshBlock* owned = team.ownedBlock(block->loc());
        EXPECT_NE(owned, nullptr) << block->loc().str();
        if (owned)
            captureBlock(*owned, &out);
    }
    return out;
}

/**
 * A reference run whose dt/mass history is trimmed to its final
 * `ncont` cycles — what a restored continuation run records.
 */
ShardRun
continuationTail(ShardRun reference, std::size_t ncont)
{
    EXPECT_GE(reference.dts.size(), ncont);
    reference.dts.erase(reference.dts.begin(),
                        reference.dts.end() -
                            static_cast<std::ptrdiff_t>(ncont));
    reference.masses.erase(reference.masses.begin(),
                           reference.masses.end() -
                               static_cast<std::ptrdiff_t>(ncont));
    return reference;
}

/** write @ 2 ranks, restore at {1,2,4} ranks x {1,2} threads. */
void
elasticRestoreMatrix(const std::string& package_name)
{
    TempFile ckpt("test_ckpt_elastic_" + package_name + ".bin");
    writeTeamCheckpoint(package_name, 2, writeConfig(), ckpt.path);
    const CheckpointImage image = CheckpointReader::read(ckpt.path);
    EXPECT_EQ(image.cycle, 4);
    EXPECT_EQ(image.package, package_name);

    for (int threads : {1, 2}) {
        // Uninterrupted baseline at the restore's own thread count:
        // block state is backend-independent, but the mass diagnostic
        // is an intra-block sum whose fold order follows the thread
        // count, so the clean run must use the same one.
        const ShardRun reference = runClassic(package_name, threads);
        const ShardRun tail = continuationTail(reference, 4);
        for (int ranks : {1, 2, 4}) {
            const ShardRun continued = restoreTeamAndRun(
                package_name, image, ranks, threads,
                shardDriverConfig());
            expectBitwiseEqual(
                tail, continued,
                package_name + " restored @" + std::to_string(ranks) +
                    "r x " + std::to_string(threads) + "t");
        }
    }
}

TEST(Checkpoint, ElasticRestoreMatrixBurgers)
{
    elasticRestoreMatrix("burgers");
}

TEST(Checkpoint, ElasticRestoreMatrixAdvection)
{
    elasticRestoreMatrix("advection");
}

TEST(Checkpoint, RestoreStraddlesRemeshBeforeLoadBalance)
{
    // lbEvery=4: this workload refines at cycle index 2, so the
    // cycle-3 snapshot (taken after that cycle) captures a tree that
    // remeshed WITHOUT yet load balancing — the restore path must
    // re-shard that pending imbalance on its own.
    auto package = makePackage("burgers");
    VariableRegistry registry = package->buildRegistry();
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(1));
    Mesh mesh(shardMeshConfig(1, 1, false), registry, ctx);
    RankWorld world(1);
    SphericalWaveTagger tagger(shardWaveParams());
    EvolutionDriver driver(mesh, *package, world, tagger,
                           shardDriverConfig(/*lb_every=*/4));
    driver.initialize();
    driver.run();
    ShardRun reference;
    captureHistory(driver.history(), &reference);
    for (const auto& block : mesh.blocks())
        captureBlock(*block, &reference);
    // The snapshot cycle really is the remesh-without-migration
    // window: it remeshed, and 3 % lbEvery != 0 so no load balance ran.
    const CycleStats& straddle = driver.history()[2];
    ASSERT_GT(straddle.refined + straddle.derefined, 0);

    TempFile ckpt("test_ckpt_straddle.bin");
    DriverConfig write_config = shardDriverConfig(/*lb_every=*/4);
    write_config.ncycles = 3;
    write_config.checkpointEvery = 3;
    writeTeamCheckpoint("burgers", 2, write_config, ckpt.path);
    const CheckpointImage image = CheckpointReader::read(ckpt.path);
    EXPECT_EQ(image.cycle, 3);
    const ShardRun continued = restoreTeamAndRun(
        "burgers", image, 2, 1, shardDriverConfig(/*lb_every=*/4));
    expectBitwiseEqual(continuationTail(reference, 5), continued,
                       "remesh-straddling restore @2r");
}

TEST(Checkpoint, WritesAreDecompositionInvariant)
{
    // The same cycle checkpointed at 1 and 2 ranks must produce
    // byte-identical files: state is gathered and reassembled by gid,
    // independent of the shard layout. Uniform costs only — measured
    // costs are wall-clock samples that ride the checkpoint, so they
    // are legitimately run- and decomposition-dependent bytes.
    DriverConfig config = writeConfig();
    config.lbCost = LbCostMode::Uniform;
    TempFile one("test_ckpt_1rank.bin");
    TempFile two("test_ckpt_2rank.bin");
    writeTeamCheckpoint("advection", 1, config, one.path);
    writeTeamCheckpoint("advection", 2, config, two.path);
    const auto bytes_one = readFileBytes(one.path);
    const auto bytes_two = readFileBytes(two.path);
    ASSERT_FALSE(bytes_one.empty());
    EXPECT_EQ(bytes_one, bytes_two);
}

TEST(Checkpoint, AsyncMatchesSyncBytes)
{
    // Uniform costs for the same reason as above: two separate runs
    // cannot reproduce measured (wall-clock) cost bytes.
    DriverConfig config = writeConfig();
    config.lbCost = LbCostMode::Uniform;
    TempFile async_file("test_ckpt_async.bin");
    TempFile sync_file("test_ckpt_sync.bin");
    writeTeamCheckpoint("advection", 1, config, async_file.path,
                        /*async=*/true);
    writeTeamCheckpoint("advection", 1, config, sync_file.path,
                        /*async=*/false);
    const auto bytes_async = readFileBytes(async_file.path);
    const auto bytes_sync = readFileBytes(sync_file.path);
    ASSERT_FALSE(bytes_async.empty());
    EXPECT_EQ(bytes_async, bytes_sync);
}

/** Reads `path` expecting a FatalError mentioning every substring. */
void
expectReadFails(const std::string& path,
                const std::vector<std::string>& substrings)
{
    try {
        CheckpointReader::read(path);
        FAIL() << "expected FatalError reading " << path;
    } catch (const FatalError& e) {
        const std::string what = e.what();
        for (const std::string& substring : substrings)
            EXPECT_NE(what.find(substring), std::string::npos)
                << "message: " << what << "\nmissing: " << substring;
        // Actionable errors always name the offending file.
        EXPECT_NE(what.find(path), std::string::npos) << what;
    }
}

TEST(Checkpoint, ReaderRejectsCorruptFiles)
{
    TempFile good("test_ckpt_good.bin");
    writeTeamCheckpoint("advection", 1, writeConfig(), good.path);
    const std::vector<std::uint8_t> bytes = readFileBytes(good.path);
    ASSERT_GT(bytes.size(), 64u);

    TempFile mutant("test_ckpt_mutant.bin");

    // Truncated below the preamble.
    writeFileBytes(mutant.path, {bytes.begin(), bytes.begin() + 12});
    expectReadFails(mutant.path, {"is truncated", "preamble"});

    // Truncated payload: header intact, half the payload missing.
    writeFileBytes(mutant.path,
                   {bytes.begin(), bytes.begin() + bytes.size() / 2});
    expectReadFails(mutant.path, {"is truncated", "payload"});

    // One flipped payload byte: caught by the CRC before any parsing.
    std::vector<std::uint8_t> flipped = bytes;
    flipped[flipped.size() - 1] ^= 0x40;
    writeFileBytes(mutant.path, flipped);
    expectReadFails(mutant.path,
                    {"is corrupt", "crc32 mismatch", "expected 0x"});

    // Damaged magic: not a checkpoint at all.
    std::vector<std::uint8_t> bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    writeFileBytes(mutant.path, bad_magic);
    expectReadFails(mutant.path,
                    {"bad magic", "VIBECKPT",
                     "not a VIBE checkpoint file"});

    // Future version: refused with both versions named.
    std::vector<std::uint8_t> versioned = bytes;
    versioned[8] += 1; // little-endian low byte of the u32 version
    writeFileBytes(mutant.path, versioned);
    expectReadFails(mutant.path,
                    {"unsupported version", "expected 2", "found 3"});
}

TEST(Checkpoint, ReaderNamesMissingFile)
{
    expectReadFails("test_ckpt_does_not_exist.bin",
                    {"cannot be opened"});
}

TEST(Checkpoint, RestoreRejectsMismatchedRun)
{
    TempFile ckpt("test_ckpt_mismatch.bin");
    writeTeamCheckpoint("advection", 1, writeConfig(), ckpt.path);
    const CheckpointImage image = CheckpointReader::read(ckpt.path);
    try {
        restoreTeamAndRun("burgers", image, 1, 1, shardDriverConfig());
        FAIL() << "expected RestoreError for package mismatch";
    } catch (const RestoreError& e) {
        // The distinct type matters: the supervised recovery loop
        // rethrows RestoreError immediately (the same image re-fails
        // identically) instead of retrying it maxRestarts times.
        const std::string what = e.what();
        EXPECT_NE(what.find("advection"), std::string::npos) << what;
        EXPECT_NE(what.find("burgers"), std::string::npos) << what;
    }
}

TEST(FaultRecovery, InjectedFaultNoHangReportsOriginalMessage)
{
    // Rank 1 dies at the top of cycle 2 while rank 0 is already blocked
    // in the dt rendezvous; the team must unwind promptly (no hang) and
    // rethrow the failing rank's ORIGINAL message, not a generic
    // "a peer rank failed".
    auto package = makePackage("burgers");
    VariableRegistry registry = package->buildRegistry();
    FaultInjector injector(/*fail_rank=*/1, /*fail_cycle=*/2);
    RankTeam team(shardMeshConfig(2, 1, false), registry, *package,
                  shardDriverConfig(), [](int) {
                      return std::make_unique<SphericalWaveTagger>(
                          shardWaveParams());
                  });
    team.setFaultInjector(&injector);
    try {
        team.run();
        FAIL() << "expected the injected fault to propagate";
    } catch (const PanicError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("injected fault"), std::string::npos)
            << what;
        EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
        EXPECT_NE(what.find("cycle 2"), std::string::npos) << what;
    }
    EXPECT_TRUE(injector.fired());
}

TEST(FaultRecovery, ExperimentRecoveryRestartsFromCheckpoint)
{
    TempFile ckpt("test_ckpt_recovery.bin");
    ExperimentSpec spec;
    spec.meshSize = 16;
    spec.blockSize = 8;
    spec.amrLevels = 2;
    spec.ncycles = 6;
    spec.numeric = true;
    spec.package = "advection";
    spec.numRanks = 2;
    spec.checkpointEvery = 2;
    spec.checkpointPath = ckpt.path;
    spec.maxRestarts = 1;
    spec.failRank = 1;
    spec.failCycle = 4;
    const ExperimentResult recovered = Experiment(spec).run();
    EXPECT_EQ(recovered.restarts, 1);
    EXPECT_GE(recovered.recoverySeconds, 0.0);
    EXPECT_GT(recovered.checkpointsWritten, 0);
    // Last durable checkpoint before the death at cycle 4 is cycle 4
    // itself (written at the end of cycle index 3), so the retried
    // attempt evolves exactly cycles 4 and 5.
    ASSERT_EQ(recovered.history.size(), 2u);

    ExperimentSpec clean = spec;
    clean.checkpointEvery = 0;
    clean.checkpointPath.clear();
    clean.maxRestarts = 0;
    clean.failRank = -1;
    clean.failCycle = -1;
    const ExperimentResult baseline = Experiment(clean).run();
    ASSERT_EQ(baseline.history.size(), 6u);
    EXPECT_EQ(baseline.restarts, 0);
    // Bitwise-identical continuation: the recovered run's history is
    // the tail of the uninterrupted run's.
    for (std::size_t c = 0; c < recovered.history.size(); ++c) {
        const CycleStats& cont = recovered.history[c];
        const CycleStats& ref = baseline.history[4 + c];
        EXPECT_EQ(cont.dt, ref.dt) << "cycle " << ref.cycle;
        EXPECT_EQ(cont.mass, ref.mass) << "cycle " << ref.cycle;
        EXPECT_EQ(cont.nblocks, ref.nblocks) << "cycle " << ref.cycle;
    }
    EXPECT_EQ(recovered.finalBlocks, baseline.finalBlocks);
}

TEST(FaultRecovery, FailureBeforeFirstCheckpointRetriesFresh)
{
    TempFile ckpt("test_ckpt_fresh_retry.bin");
    ExperimentSpec spec;
    spec.meshSize = 16;
    spec.blockSize = 8;
    spec.amrLevels = 2;
    spec.ncycles = 6;
    spec.numeric = true;
    spec.package = "advection";
    spec.numRanks = 2;
    spec.checkpointEvery = 2;
    spec.checkpointPath = ckpt.path;

    // Plant a stale-but-valid checkpoint at the path: a clean run of
    // the SAME spec leaves its final (cycle 6) snapshot on disk.
    const ExperimentResult stale_producer = Experiment(spec).run();
    EXPECT_GT(stale_producer.checkpointsWritten, 0);

    // Now fail at cycle 1, before the retried run's own first snapshot
    // (checkpointEvery=8 > failCycle) is ever durable. Recovery must
    // NOT read the stale file (restoring it would continue from cycle
    // 6 and record an empty history) and must not die on it either —
    // it retries from a fresh initialize.
    spec.checkpointEvery = 8;
    spec.maxRestarts = 1;
    spec.failRank = 1;
    spec.failCycle = 1;
    const ExperimentResult recovered = Experiment(spec).run();
    EXPECT_EQ(recovered.restarts, 1);
    EXPECT_EQ(recovered.checkpointsWritten, 0);
    ASSERT_EQ(recovered.history.size(), 6u);
    ASSERT_EQ(stale_producer.history.size(), 6u);
    // The fresh retry replays the whole run bitwise.
    for (std::size_t c = 0; c < recovered.history.size(); ++c) {
        const CycleStats& fresh = recovered.history[c];
        const CycleStats& ref = stale_producer.history[c];
        EXPECT_EQ(fresh.dt, ref.dt) << "cycle " << ref.cycle;
        EXPECT_EQ(fresh.mass, ref.mass) << "cycle " << ref.cycle;
        EXPECT_EQ(fresh.nblocks, ref.nblocks) << "cycle " << ref.cycle;
    }
}

TEST(FaultRecovery, ExperimentValidatesCheckpointKnobs)
{
    ExperimentSpec spec;
    spec.meshSize = 16;
    spec.blockSize = 8;
    spec.numeric = true;
    spec.checkpointEvery = 2; // no path
    EXPECT_THROW(Experiment(spec).run(), FatalError);

    ExperimentSpec counting;
    counting.meshSize = 16;
    counting.blockSize = 8;
    counting.numeric = false;
    counting.checkpointEvery = 2;
    counting.checkpointPath = "test_ckpt_unused.bin";
    EXPECT_THROW(Experiment(counting).run(), FatalError);

    ExperimentSpec restarts;
    restarts.meshSize = 16;
    restarts.blockSize = 8;
    restarts.numeric = true;
    restarts.maxRestarts = 1; // no checkpointing to restart from
    EXPECT_THROW(Experiment(restarts).run(), FatalError);
}

TEST(FaultRecovery, InjectorKnobsAndOneShotFiring)
{
    ParameterInput pin;
    pin.set("exec", "fail_rank", "1");
    pin.set("exec", "fail_cycle", "3");
    const FaultInjector from_params = FaultInjector::fromParams(pin);
    EXPECT_TRUE(from_params.armed());
    EXPECT_EQ(from_params.failRank(), 1);
    EXPECT_EQ(from_params.failCycle(), 3);

    // The deck path keeps full 64-bit width, matching VIBE_FAIL_CYCLE.
    ParameterInput wide;
    wide.set("exec", "fail_rank", "0");
    wide.set("exec", "fail_cycle", "4294967296");
    EXPECT_EQ(FaultInjector::fromParams(wide).failCycle(),
              INT64_C(4294967296));

    FaultInjector disarmed;
    EXPECT_FALSE(disarmed.armed());
    disarmed.maybeFail(0, 0); // no-op

    FaultInjector armed(0, 5);
    armed.maybeFail(0, 4); // wrong cycle
    armed.maybeFail(1, 5); // wrong rank
    EXPECT_FALSE(armed.fired());
    EXPECT_THROW(armed.maybeFail(0, 5), PanicError);
    EXPECT_TRUE(armed.fired());
    armed.maybeFail(0, 5); // fires once: the retried attempt sails past
}

TEST(FaultRecovery, TaskListAbortCarriesPeerReasonSerial)
{
    TaskList tl;
    tl.setLabel("abort-test");
    tl.addTask("NeverReady", [] { return TaskStatus::Iterate; });
    TaskExecOptions options;
    options.external_progress = true;
    options.external_stall_seconds = 30.0;
    options.external_abort = [] {
        return std::string("injected fault: rank 7 failed at cycle 9");
    };
    try {
        tl.execute(options);
        FAIL() << "expected the abort probe to panic";
    } catch (const PanicError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("task list aborted: injected fault: "
                            "rank 7 failed at cycle 9"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("NeverReady"), std::string::npos) << what;
    }
}

TEST(FaultRecovery, TaskListAbortCarriesPeerReasonThreaded)
{
    TaskList tl;
    tl.setLabel("abort-test-threaded");
    tl.addTask("NeverReadyA", [] { return TaskStatus::Iterate; });
    tl.addTask("NeverReadyB", [] { return TaskStatus::Iterate; });
    auto space = makeExecutionSpace(2);
    TaskExecOptions options;
    options.space = space.get();
    options.external_progress = true;
    options.external_stall_seconds = 30.0;
    options.external_abort = [] {
        return std::string("injected fault: rank 3 failed at cycle 1");
    };
    try {
        tl.execute(options);
        FAIL() << "expected the abort probe to panic";
    } catch (const PanicError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("task list aborted: injected fault: "
                            "rank 3 failed at cycle 1"),
                  std::string::npos)
            << what;
    }
}

TEST(FaultRecovery, RankWorldKeepsFirstFailureReason)
{
    RankWorld world(2, /*concurrent=*/true);
    EXPECT_FALSE(world.failed());
    world.markFailed("original cause");
    world.markFailed("secondary abort");
    EXPECT_TRUE(world.failed());
    EXPECT_EQ(world.failureReason(), "original cause");

    RankWorld bare(2, /*concurrent=*/true);
    bare.markFailed();
    EXPECT_EQ(bare.failureReason(), "a peer rank failed");
}

} // namespace
} // namespace vibe
