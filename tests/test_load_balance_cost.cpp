/**
 * @file test_load_balance_cost.cpp
 * Measured-cost load balancing: cost-model normalization/EMA, the
 * lb_cost knobs, partition hysteresis (direct and end-to-end
 * no-thrash), refinement cost inheritance, checkpoint cost carriage,
 * measured-vs-uniform bitwise state equality, and the stiff reaction
 * package that makes per-block cost imbalance real.
 */
#include "shard_harness.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "driver/block_cost_model.hpp"
#include "driver/load_balance.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_writer.hpp"
#include "pkg/reaction_package.hpp"

namespace vibe {
namespace {

using shard_test::captureHistory;
using shard_test::expectBitwiseEqual;
using shard_test::makePackage;
using shard_test::runClassic;
using shard_test::runTeam;
using shard_test::shardDriverConfig;
using shard_test::shardMeshConfig;
using shard_test::shardWaveParams;
using shard_test::ShardRun;

/** Classic 8-block counting mesh for cost-model unit tests. */
struct CostFixture
{
    std::unique_ptr<PackageDescriptor> package = makePackage("advection");
    VariableRegistry registry = package->buildRegistry();
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx{ExecMode::Count, &profiler, &tracker,
                    makeExecutionSpace(1)};
    Mesh mesh{shardMeshConfig(1, 1, false), registry, ctx};
};

TEST(LbCostMode, NamesAndEnvKnob)
{
    EXPECT_EQ(lbCostModeFromName("uniform"), LbCostMode::Uniform);
    EXPECT_EQ(lbCostModeFromName("measured"), LbCostMode::Measured);
    EXPECT_THROW(lbCostModeFromName("turbo"), FatalError);
    EXPECT_EQ(std::string(lbCostModeName(LbCostMode::Uniform)),
              "uniform");
    EXPECT_EQ(std::string(lbCostModeName(LbCostMode::Measured)),
              "measured");

    // Preserve the CI matrix's VIBE_LB_COST across this test.
    const char* saved = std::getenv("VIBE_LB_COST");
    const std::string saved_value = saved ? saved : "";
    setenv("VIBE_LB_COST", "measured", 1);
    EXPECT_EQ(envLbCostMode(LbCostMode::Uniform), LbCostMode::Measured);
    setenv("VIBE_LB_COST", "", 1);
    EXPECT_EQ(envLbCostMode(LbCostMode::Uniform), LbCostMode::Uniform);
    unsetenv("VIBE_LB_COST");
    EXPECT_EQ(envLbCostMode(LbCostMode::Measured), LbCostMode::Measured);
    if (saved)
        setenv("VIBE_LB_COST", saved_value.c_str(), 1);
}

TEST(BlockCostModel, AccumulatesPositiveSamplesPerCycle)
{
    BlockCostModel model;
    model.addSample(3, 0.5);
    model.addSample(3, 0.25);
    model.addSample(4, -1.0); // clocks can misbehave; never subtract
    model.addSample(5, 0.0);
    EXPECT_EQ(model.numSamples(), 1u);
    EXPECT_DOUBLE_EQ(model.sample(3), 0.75);
    EXPECT_DOUBLE_EQ(model.sample(4), 0.0);
    model.beginCycle();
    EXPECT_EQ(model.numSamples(), 0u);
    EXPECT_DOUBLE_EQ(model.sample(3), 0.0);
}

TEST(BlockCostModel, NormalizesScaleFreeAndAppliesEma)
{
    // gid 0 measures 3x the others: after one EMA fold its cost must
    // pull above the uniform interiorCells() baseline and the others
    // below, on the same scale regardless of absolute seconds.
    const double interior = 512.0; // 8^3 interior cells
    for (double scale : {1.0, 1000.0}) {
        CostFixture f;
        RankWorld world(1);
        ASSERT_EQ(f.mesh.numBlocks(), 8u);
        BlockCostModel model;
        model.addSample(0, 3.0 * scale);
        for (int gid = 1; gid < 8; ++gid)
            model.addSample(gid, 1.0 * scale);
        model.applyMeasuredCosts(f.mesh, world);

        // mean seconds = 10/8; targets are (seconds/mean)*interior.
        const double alpha = BlockCostModel::kAlpha;
        const double hot =
            (1 - alpha) * interior + alpha * (3.0 / 1.25) * interior;
        const double cold =
            (1 - alpha) * interior + alpha * (1.0 / 1.25) * interior;
        EXPECT_NEAR(f.mesh.blocks()[0]->cost(), hot, 1e-9)
            << "scale " << scale;
        for (int gid = 1; gid < 8; ++gid)
            EXPECT_NEAR(f.mesh.blocks()[gid]->cost(), cold, 1e-9)
                << "gid " << gid << ", scale " << scale;
    }
}

TEST(BlockCostModel, CountingModeAndUnsampledBlocksKeepCosts)
{
    CostFixture f;
    RankWorld world(1);
    const double interior = 512.0;

    // No samples at all (counting mode skipped every task body): the
    // apply is a no-op, not a divide-by-zero.
    BlockCostModel empty;
    empty.applyMeasuredCosts(f.mesh, world);
    for (const auto& block : f.mesh.blocks())
        EXPECT_DOUBLE_EQ(block->cost(), interior);

    // Only gid 0 sampled (the rest created mid-cycle, say): unsampled
    // blocks keep their inherited estimates untouched.
    BlockCostModel partial;
    partial.addSample(0, 2.0);
    partial.applyMeasuredCosts(f.mesh, world);
    const double alpha = BlockCostModel::kAlpha;
    // mean seconds = 2/8 -> gid 0's target is 8x interior.
    EXPECT_NEAR(f.mesh.blocks()[0]->cost(),
                (1 - alpha) * interior + alpha * 8.0 * interior, 1e-9);
    for (int gid = 1; gid < 8; ++gid)
        EXPECT_DOUBLE_EQ(f.mesh.blocks()[gid]->cost(), interior);
}

TEST(LoadBalanceCost, HysteresisSkipsMarginalRepartitions)
{
    CostFixture f;
    RankWorld world(2); // modeled 2-rank world, classic mesh
    const auto& blocks = f.mesh.blocks();

    // Establish the balanced 4/4 baseline partition. Measured mode:
    // the partitioner must consume the cost metadata riding the blocks
    // (uniform mode ignores it and weighs interior cells).
    LoadBalanceOptions measured;
    measured.costMode = LbCostMode::Measured;
    const LoadBalanceStats seeded = loadBalance(f.mesh, world, measured);
    EXPECT_TRUE(seeded.adopted);
    EXPECT_EQ(seeded.movedBlocks, 4);
    EXPECT_DOUBLE_EQ(seeded.maxRankCost, 4.0 * 512.0);
    EXPECT_DOUBLE_EQ(seeded.imbalance(), 1.0);

    // Skew gid 0: the greedy split now wants to move block 3 to rank
    // 1, improving max/mean by (3536 - 3024) / 2792 ~ 0.183.
    blocks[0]->setCost(2000.0);

    LoadBalanceOptions strict;
    strict.costMode = LbCostMode::Measured;
    strict.imbalanceTrigger = 0.5;
    const LoadBalanceStats skipped = loadBalance(f.mesh, world, strict);
    EXPECT_FALSE(skipped.adopted);
    EXPECT_EQ(skipped.movedBlocks, 0);
    // Stats describe the KEPT current assignment, what the run pays.
    EXPECT_DOUBLE_EQ(skipped.maxRankCost, 2000.0 + 3 * 512.0);
    EXPECT_DOUBLE_EQ(skipped.meanRankCost, (2000.0 + 7 * 512.0) / 2.0);
    for (std::size_t b = 0; b < blocks.size(); ++b)
        EXPECT_EQ(blocks[b]->rank(), b < 4 ? 0 : 1) << "block " << b;

    LoadBalanceOptions lenient;
    lenient.costMode = LbCostMode::Measured;
    lenient.imbalanceTrigger = 0.1;
    const LoadBalanceStats adopted = loadBalance(f.mesh, world, lenient);
    EXPECT_TRUE(adopted.adopted);
    EXPECT_EQ(adopted.movedBlocks, 1);
    EXPECT_DOUBLE_EQ(adopted.maxRankCost, 2000.0 + 2 * 512.0);
    EXPECT_EQ(blocks[3]->rank(), 1);
}

TEST(LoadBalanceCost, RefineSplitsAndDerefineSumsCost)
{
    // The shard workload refines AND derefines mid-run; children carry
    // an even split of the parent's estimate and a derefined parent
    // the children's sum, so total mesh cost is exactly conserved
    // through every remesh (uniform mode: no measurements overwrite
    // the inherited values).
    auto package = makePackage("burgers");
    VariableRegistry registry = package->buildRegistry();
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(1));
    Mesh mesh(shardMeshConfig(1, 1, false), registry, ctx);
    RankWorld world(1);
    SphericalWaveTagger tagger(shardWaveParams());
    DriverConfig config = shardDriverConfig();
    config.lbCost = LbCostMode::Uniform;
    EvolutionDriver driver(mesh, *package, world, tagger, config);
    driver.initialize();

    const auto total_cost = [&mesh] {
        double total = 0;
        for (const auto& block : mesh.blocks())
            total += block->cost();
        return total;
    };
    // 16^3 @ 8^3 base grid: 8 blocks x 512 interior cells, conserved
    // through the initial refinement too.
    EXPECT_DOUBLE_EQ(total_cost(), 8.0 * 512.0);

    driver.run();
    std::int64_t remesh_events = 0;
    for (const CycleStats& stats : driver.history())
        remesh_events += stats.refined + stats.derefined;
    ASSERT_GT(remesh_events, 0);
    EXPECT_DOUBLE_EQ(total_cost(), 8.0 * 512.0);
}

/** runClassic with an explicit cost mode / trigger. */
ShardRun
runClassicCost(const std::string& package_name, int num_threads,
               LbCostMode mode, double trigger = 0.0)
{
    auto package = makePackage(package_name);
    VariableRegistry registry = package->buildRegistry();
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(num_threads));
    Mesh mesh(shardMeshConfig(1, num_threads, false), registry, ctx);
    RankWorld world(1);
    SphericalWaveTagger tagger(shardWaveParams());
    DriverConfig config = shardDriverConfig();
    config.lbCost = mode;
    config.lbImbalanceTrigger = trigger;
    EvolutionDriver driver(mesh, *package, world, tagger, config);
    driver.initialize();
    driver.run();

    ShardRun out;
    captureHistory(driver.history(), &out);
    for (const auto& block : mesh.blocks())
        shard_test::captureBlock(*block, &out);
    return out;
}

/** runTeam with an explicit cost mode / trigger. */
ShardRun
runTeamCost(const std::string& package_name, int num_ranks,
            int num_threads, LbCostMode mode, double trigger = 0.0)
{
    auto package = makePackage(package_name);
    VariableRegistry registry = package->buildRegistry();
    DriverConfig config = shardDriverConfig();
    config.lbCost = mode;
    config.lbImbalanceTrigger = trigger;
    RankTeam team(shardMeshConfig(num_ranks, num_threads, false),
                  registry, *package, config, [](int) {
                      return std::make_unique<SphericalWaveTagger>(
                          shardWaveParams());
                  });
    team.run();

    ShardRun out;
    captureHistory(team.aggregatedHistory(), &out);
    for (const auto& block : team.mesh(0).blocks()) {
        MeshBlock* owned = team.ownedBlock(block->loc());
        EXPECT_NE(owned, nullptr) << block->loc().str();
        if (owned)
            shard_test::captureBlock(*owned, &out);
    }
    return out;
}

TEST(LoadBalanceCost, MeasuredMatchesUniformBitwise)
{
    // The cost source steers WHERE blocks live, never WHAT they hold:
    // mesh state, dt, and mass must be bitwise identical between
    // uniform and measured costs at every rank/thread count, with and
    // without hysteresis.
    const ShardRun uniform =
        runClassicCost("advection", 1, LbCostMode::Uniform);
    expectBitwiseEqual(
        uniform, runClassicCost("advection", 1, LbCostMode::Measured),
        "measured classic @1r x 1t");
    expectBitwiseEqual(
        uniform, runTeamCost("advection", 2, 1, LbCostMode::Measured),
        "measured team @2r x 1t");
    expectBitwiseEqual(uniform,
                       runTeamCost("advection", 2, 1,
                                   LbCostMode::Measured, 0.05),
                       "measured+hysteresis team @2r x 1t");

    const ShardRun uniform2t =
        runClassicCost("advection", 2, LbCostMode::Uniform);
    expectBitwiseEqual(
        uniform2t, runTeamCost("advection", 2, 2, LbCostMode::Measured),
        "measured team @2r x 2t");
}

TEST(LoadBalanceCost, CycleStatsSurfaceLbOutcome)
{
    auto package = makePackage("advection");
    VariableRegistry registry = package->buildRegistry();
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(1));
    Mesh mesh(shardMeshConfig(1, 1, false), registry, ctx);
    RankWorld world(1);
    SphericalWaveTagger tagger(shardWaveParams());
    EvolutionDriver driver(mesh, *package, world, tagger,
                           shardDriverConfig(/*lb_every=*/1));
    driver.initialize();
    driver.run();
    ASSERT_FALSE(driver.history().empty());
    for (const CycleStats& stats : driver.history()) {
        // lbEvery=1: the partitioner ran (and adopted) every cycle; on
        // one rank max == mean, a perfectly balanced 1.0.
        EXPECT_EQ(stats.lbDecision, 1) << "cycle " << stats.cycle;
        EXPECT_GT(stats.lbMeanRankCost, 0.0) << "cycle " << stats.cycle;
        EXPECT_DOUBLE_EQ(stats.lbImbalance, 1.0)
            << "cycle " << stats.cycle;
        EXPECT_DOUBLE_EQ(stats.lbMaxRankCost, stats.lbMeanRankCost)
            << "cycle " << stats.cycle;
    }
}

TEST(LoadBalanceCost, CheckpointCarriesMeasuredCosts)
{
    const std::string path = "test_ckpt_costs.bin";
    auto package = makePackage("advection");
    VariableRegistry registry = package->buildRegistry();
    DriverConfig config = shardDriverConfig();
    config.ncycles = 4;
    config.checkpointEvery = 4;
    config.lbCost = LbCostMode::Measured;
    {
        CheckpointWriter writer(path, /*async=*/false);
        RankTeam team(shardMeshConfig(2, 1, false), registry, *package,
                      config, [](int) {
                          return std::make_unique<SphericalWaveTagger>(
                              shardWaveParams());
                      });
        team.setCheckpointWriter(&writer);
        team.run();
        writer.finish();
        ASSERT_EQ(writer.snapshots(), 1u);
    }

    const CheckpointImage image = CheckpointReader::read(path);
    ASSERT_FALSE(image.blocks.empty());
    bool any_off_uniform = false;
    for (std::size_t gid = 0; gid < image.blocks.size(); ++gid) {
        EXPECT_GT(image.blocks[gid].cost, 0.0) << "gid " << gid;
        any_off_uniform =
            any_off_uniform || image.blocks[gid].cost != 512.0;
    }
    // Measured estimates are wall clocks: at least one block must have
    // pulled off the exact uniform baseline.
    EXPECT_TRUE(any_off_uniform);

    // Restore without evolving (ncycles == snapshot cycle): every
    // replica's blocks resume with the checkpointed estimates, so a
    // re-sharded run starts warm instead of from uniform.
    RankTeam restored(shardMeshConfig(2, 1, false), registry, *package,
                      config, [](int) {
                          return std::make_unique<SphericalWaveTagger>(
                              shardWaveParams());
                      });
    restored.setRestoreImage(&image);
    restored.run();
    for (const auto& block : restored.mesh(0).blocks()) {
        const std::size_t gid = static_cast<std::size_t>(block->gid());
        ASSERT_LT(gid, image.blocks.size());
        EXPECT_DOUBLE_EQ(block->cost(), image.blocks[gid].cost)
            << "gid " << gid;
    }
    std::remove(path.c_str());
}

TEST(LoadBalanceCost, MeasuredHysteresisStopsThrashing)
{
    // Static imbalance: an off-center stiff hotspot on a uniform
    // (no-AMR) 64-block mesh, so measured per-block costs are stable
    // in shape. After the EMA warm-up the partition must stop moving
    // storage — every further proposal is rejected (or identical).
    ParameterInput pin;
    pin.set("reaction", "vx", "0.05");
    pin.set("reaction", "vy", "0.0");
    pin.set("reaction", "vz", "0.0");
    auto package = PackageRegistry::instance().create("reaction", pin);
    VariableRegistry registry = package->buildRegistry();

    MeshConfig mesh_config = shardMeshConfig(2, 1, false);
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = 32;
    mesh_config.amrLevels = 1;

    DriverConfig config = shardDriverConfig(/*lb_every=*/1);
    config.ncycles = 10;
    config.lbCost = LbCostMode::Measured;
    config.lbImbalanceTrigger = 0.4;

    // Settling is only guaranteed while the measured costs are stable:
    // an oversubscribed box (e.g. the whole suite running in parallel
    // on two cores) preempts rank threads and genuinely shifts the
    // wall clocks, and rebalancing to them is correct behavior, not
    // thrash. Retry a few times — any uncontended run must settle.
    int late_moves = -1;
    for (int attempt = 0; attempt < 3 && late_moves != 0; ++attempt) {
        RankTeam team(mesh_config, registry, *package, config,
                      [](int) {
                          return std::make_unique<SphericalWaveTagger>(
                              shardWaveParams());
                      });
        team.run();

        const std::vector<CycleStats> history =
            team.aggregatedHistory();
        ASSERT_EQ(history.size(), 10u);
        late_moves = 0;
        for (std::size_t c = 0; c < history.size(); ++c) {
            EXPECT_NE(history[c].lbDecision, 0) << "cycle " << c;
            if (c >= 6)
                late_moves += history[c].movedBlocks;
        }
    }
    EXPECT_EQ(late_moves, 0);
}

TEST(Reaction, EquilibriumIterationContrastIsTheWorkload)
{
    const ReactionConfig config;
    const ReactionPackage package(config);
    int hot_iters = 0;
    int cold_iters = 0;
    const double eq_hot = package.equilibrium(1.0, &hot_iters);
    const double eq_cold = package.equilibrium(1e-3, &cold_iters);

    // The solve is a real (convergent) equilibrium: c in (0, a].
    EXPECT_GT(eq_hot, 0.0);
    EXPECT_LT(eq_hot, 1.0);
    EXPECT_GT(eq_cold, 0.0);
    EXPECT_NEAR(eq_cold, 1e-3, 1e-5);
    // The residual really solves c * (1 + S g(c) e^{c-1}) = a.
    const double g = eq_hot * eq_hot / (1.0 + eq_hot * eq_hot);
    EXPECT_NEAR(eq_hot * (1.0 + config.stiffness * g *
                              std::exp(eq_hot - 1.0)),
                1.0, 1e-9);

    // Feature cells burn an order of magnitude more iterations than
    // floor cells — the per-block cost contrast — while converging
    // well inside the cap.
    EXPECT_LE(cold_iters, 5);
    EXPECT_GT(hot_iters, 10 * cold_iters);
    EXPECT_LT(hot_iters, config.maxIters);
}

TEST(Reaction, DeckSelectsAndValidatesKnobs)
{
    ParameterInput pin;
    pin.set("job", "package", "reaction");
    pin.set("reaction", "stiffness", "8.0");
    pin.set("reaction", "rate", "2.0");
    pin.set("reaction", "recon", "weno5");
    auto package = PackageRegistry::fromDeck(pin);
    ASSERT_NE(package, nullptr);
    EXPECT_EQ(package->name(), "reaction");
    const auto* reaction =
        dynamic_cast<const ReactionPackage*>(package.get());
    ASSERT_NE(reaction, nullptr);
    EXPECT_DOUBLE_EQ(reaction->config().stiffness, 8.0);
    EXPECT_DOUBLE_EQ(reaction->config().rate, 2.0);
    EXPECT_EQ(reaction->config().recon, ReconMethod::Weno5);

    // A typo'd reaction knob is fatal at parse time, like every block.
    EXPECT_THROW(
        ParameterInput::fromString("<reaction>\nstifness = 9\n"),
        FatalError);
}

TEST(Reaction, ConservesTotalSpeciesMass)
{
    // Uniform (no-AMR) periodic run: flux-corrected transport plus the
    // antisymmetric per-cell source conserve total (a + b) to
    // round-off; the history's mass diagnostic must hold flat.
    auto package = makePackage("reaction");
    VariableRegistry registry = package->buildRegistry();
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(1));
    MeshConfig mesh_config = shardMeshConfig(1, 1, false);
    mesh_config.amrLevels = 1;
    Mesh mesh(mesh_config, registry, ctx);
    RankWorld world(1);
    SphericalWaveTagger tagger(shardWaveParams());
    EvolutionDriver driver(mesh, *package, world, tagger,
                           shardDriverConfig());
    driver.initialize();
    driver.run();

    const auto& history = driver.history();
    ASSERT_FALSE(history.empty());
    const double mass0 = history.front().mass;
    ASSERT_GT(mass0, 0.0);
    for (const CycleStats& stats : history)
        EXPECT_NEAR(stats.mass, mass0, 1e-11 * mass0)
            << "cycle " << stats.cycle;
}

TEST(Reaction, ShardedRunMatchesClassicBitwise)
{
    // The stiff source is a pure function of local state, so the new
    // package inherits the harness's decomposition guarantee: 2 ranks
    // (with mid-run remeshes and migrations) reproduce the classic
    // run's state bit for bit.
    const ShardRun classic = runClassic("reaction", 1);
    EXPECT_GT(classic.remeshEvents, 0);
    expectBitwiseEqual(classic, runTeam("reaction", 2, 1),
                       "reaction @2r x 1t");
}

} // namespace
} // namespace vibe
