/**
 * @file test_rank_shard.cpp
 * Rank-sharded execution: N concurrent per-rank drivers over disjoint
 * block shards must be bitwise identical to the classic 1-rank driver
 * — per-block state, derived fields, dt and mass history — for both
 * physics packages, through mid-run remeshes and real load-balance
 * migrations. Also covers the RankWorld rendezvous collectives, the
 * Shadow-block ownership invariant (exactly one replica holds a
 * block's storage, and it is the owner), and migration being
 * numerically invisible (lbEvery = 0 vs lbEvery = 1 agree).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/rank_world.hpp"
#include "core/experiment.hpp"
#include "driver/evolution_driver.hpp"
#include "driver/rank_team.hpp"
#include "exec/execution_space.hpp"
#include "shard_harness.hpp"
#include "util/logging.hpp"

namespace vibe {
namespace {

// The shared workload + capture/compare harness lives in
// shard_harness.hpp (also used by tests/test_boundary_plan.cpp).
using namespace shard_test;

// --- RankWorld collectives --------------------------------------------

TEST(RankWorldCollectives, RendezvousReduceGatherBarrier)
{
    constexpr int kRanks = 4;
    RankWorld world(kRanks, /*concurrent=*/true);
    std::vector<double> mins(kRanks, 0.0), sums(kRanks, 0.0);
    std::vector<std::vector<double>> gathers(kRanks);

    std::vector<std::thread> threads;
    for (int r = 0; r < kRanks; ++r) {
        threads.emplace_back([&, r] {
            mins[r] = world.allReduceValue(r, 10.0 + r, CollOp::Min,
                                           sizeof(double));
            world.barrier(r);
            sums[r] = world.allReduceValue(r, 1.0 + r, CollOp::Sum,
                                           sizeof(double));
            std::vector<double> mine{static_cast<double>(r),
                                     static_cast<double>(10 * r)};
            gathers[r] = world.allGatherVec(r, std::move(mine),
                                            2.0 * sizeof(double),
                                            CollAccount::Gather);
        });
    }
    for (auto& thread : threads)
        thread.join();

    for (int r = 0; r < kRanks; ++r) {
        EXPECT_EQ(mins[r], 10.0);
        EXPECT_EQ(sums[r], 1.0 + 2.0 + 3.0 + 4.0);
        ASSERT_EQ(gathers[r].size(), 2u * kRanks);
        for (int s = 0; s < kRanks; ++s) {
            EXPECT_EQ(gathers[r][2 * s], static_cast<double>(s));
            EXPECT_EQ(gathers[r][2 * s + 1],
                      static_cast<double>(10 * s));
        }
    }
    // 2 reduces + 1 gather, accounted once per collective (not per
    // participant).
    EXPECT_EQ(world.traffic().allReduces, 2u);
    EXPECT_EQ(world.traffic().allGathers, 1u);
}

TEST(RankWorldCollectives, ModeledModePassesThrough)
{
    RankWorld world(8); // modeled: accounting only
    EXPECT_FALSE(world.concurrent());
    EXPECT_EQ(world.allReduceValue(0, 3.5, CollOp::Min, 8.0), 3.5);
    std::vector<double> mine{1.0, 2.0};
    const auto out =
        world.allGatherVec(0, std::move(mine), 8.0, CollAccount::Gather);
    EXPECT_EQ(out, (std::vector<double>{1.0, 2.0}));
    EXPECT_EQ(world.traffic().allReduces, 1u);
    EXPECT_EQ(world.traffic().allGathers, 1u);
}

// --- Bitwise rank equivalence (the acceptance harness) ----------------

class RankShardEquivalence
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(RankShardEquivalence, TeamRunsMatchClassicBitwise)
{
    const std::string package = GetParam();
    // The 1-rank baseline is per thread count: block state and dt are
    // thread-count-invariant, but a per-block mass partial is a
    // chunk-ordered sum, deterministic for a FIXED thread count (the
    // same contract the serial-vs-threaded equivalence tests pin).
    // Rank decomposition must add no difference on top of that.
    for (int threads : {1, 2}) {
        const ShardRun classic = runClassic(package, threads);
        EXPECT_GT(classic.remeshEvents, 0)
            << "workload must remesh mid-run";

        for (int ranks : {2, 4}) {
            const ShardRun team =
                runTeam(package, ranks, threads);
            // The shard workload must exercise the real machinery: at
            // least one mid-run remesh and at least one true storage
            // migration.
            EXPECT_GT(team.remeshEvents, 0);
            EXPECT_GT(team.movedBlocks, 0);
            EXPECT_GT(team.migratedBytes, 0.0);
            expectBitwiseEqual(
                classic, team,
                package + " @" + std::to_string(ranks) + " ranks x " +
                    std::to_string(threads) + " threads vs classic");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Packages, RankShardEquivalence,
                         ::testing::Values("burgers", "advection"));

TEST(RankShard, PackedInteriorMatchesClassic)
{
    const ShardRun classic = runClassic("advection", 1);
    const ShardRun packed =
        runTeam("advection", 2, 1, /*lb_every=*/1,
                /*pack_interior=*/true);
    EXPECT_GT(packed.movedBlocks, 0);
    expectBitwiseEqual(classic, packed,
                       "advection packed @2 ranks vs classic");
}

TEST(RankShard, MigrationIsNumericallyInvisible)
{
    // lbEvery = 0 never load balances: rank 0 keeps every block, no
    // storage ever moves. lbEvery = 1 migrates every imbalance. Both
    // must match the classic run bitwise — migration only relocates
    // storage, never perturbs it.
    for (const char* package : {"burgers", "advection"}) {
        const ShardRun classic =
            runClassic(package, 1, /*lb_every=*/0);
        const ShardRun pinned =
            runTeam(package, 2, 1, /*lb_every=*/0);
        EXPECT_EQ(pinned.movedBlocks, 0);
        EXPECT_EQ(pinned.migratedBytes, 0.0);
        expectBitwiseEqual(classic, pinned,
                           std::string(package) +
                               " pinned-ownership vs classic");

        const ShardRun migrating =
            runTeam(package, 2, 1, /*lb_every=*/1);
        EXPECT_GT(migrating.movedBlocks, 0);
        EXPECT_GT(migrating.migratedBytes, 0.0);
        // Same state as the never-migrated run, cycle histories aside
        // (movedBlocks differ by construction).
        ASSERT_EQ(pinned.cons.size(), migrating.cons.size());
        for (std::size_t blk = 0; blk < pinned.cons.size(); ++blk)
            EXPECT_EQ(
                std::memcmp(pinned.cons[blk].data(),
                            migrating.cons[blk].data(),
                            pinned.cons[blk].size() * sizeof(double)),
                0)
                << package << " block " << pinned.locs[blk];
    }
}

TEST(RankShard, EnvRankCountMatchesClassic)
{
    // The CI matrix routes this through VIBE_NUM_RANKS; default 2.
    const int ranks = envNumRanks(2);
    const int threads = envNumThreads(1);
    const ShardRun classic = runClassic("advection", threads);
    const ShardRun team = runTeam("advection", ranks, threads);
    expectBitwiseEqual(classic, team,
                       "advection @VIBE_NUM_RANKS=" +
                           std::to_string(ranks));
}

TEST(RankShard, ExperimentNumRanksPathAggregates)
{
    ExperimentSpec spec;
    spec.meshSize = 16;
    spec.blockSize = 8;
    spec.amrLevels = 2;
    spec.ncycles = 4;
    spec.numeric = true;
    spec.package = "advection";
    spec.numRanks = 2;
    const ExperimentResult result = Experiment(spec).run();
    EXPECT_GT(result.zoneCycles, 0);
    EXPECT_GT(result.wallSeconds, 0.0);
    EXPECT_GT(result.measuredFom(), 0.0);
    EXPECT_EQ(result.history.size(), 4u);
    // Cross-rank coupling really went over the wire.
    EXPECT_GT(result.traffic.remoteMessages, 0u);
    EXPECT_GT(result.traffic.allReduces, 0u);

    // The 1-rank classic path reports the identical history.
    ExperimentSpec classic = spec;
    classic.numRanks = 1;
    const ExperimentResult base = Experiment(classic).run();
    ASSERT_EQ(base.history.size(), result.history.size());
    for (std::size_t c = 0; c < base.history.size(); ++c) {
        EXPECT_EQ(base.history[c].dt, result.history[c].dt);
        EXPECT_EQ(base.history[c].mass, result.history[c].mass);
        EXPECT_EQ(base.history[c].nblocks, result.history[c].nblocks);
    }
    EXPECT_EQ(base.zoneCycles, result.zoneCycles);
}

TEST(RankShard, CountingModeRejectsRankSharding)
{
    ExperimentSpec spec;
    spec.numeric = false;
    spec.numRanks = 2;
    EXPECT_THROW(Experiment(spec).run(), FatalError);
}

} // namespace
} // namespace vibe
