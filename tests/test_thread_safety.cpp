/**
 * @file test_thread_safety.cpp
 * Regression tests for the machine-checked concurrency work: the
 * RankWorld traffic-counter race (snapshot-under-lock semantics),
 * rendezvous collectives racing mailbox traffic, and — in
 * VIBE_AUDIT_OWNERSHIP builds — the rank-ownership runtime backstop.
 *
 * The traffic tests are written to fail loudly under TSan against the
 * old unlocked `const Traffic&` accessor (they are plain unsynchronized
 * reads there); in normal builds they still verify snapshot
 * consistency, which torn reads violate.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "comm/rank_world.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "mesh/mesh.hpp"
#include "mesh/ownership_audit.hpp"
#include "pkg/burgers_package.hpp"
#include "util/logging.hpp"

namespace vibe {
namespace {

ChannelId channelBetween(int src, int dst)
{
    ChannelId ch{{0, src, 0, 0}, {0, dst, 0, 0}, 1, 0, 0,
                 ChannelKind::Bounds};
    return ch;
}

// Every send in these tests carries exactly 8 accounted bytes, so any
// internally consistent snapshot satisfies bytes == 8 * messages —
// including the all-zero snapshot right after a reset. A torn read
// (the pre-fix behavior) breaks the equality.
void expectConsistent(const Traffic& t)
{
    EXPECT_DOUBLE_EQ(t.totalBytes(), 8.0 * t.totalMessages());
}

TEST(TrafficCounters, SnapshotIsConsistentUnderConcurrentSends)
{
    constexpr int kIters = 2000;
    RankWorld world(2, /*concurrent=*/true);

    std::atomic<bool> done{false};
    std::thread peers[2];
    for (int rank = 0; rank < 2; ++rank) {
        peers[rank] = std::thread([&world, rank] {
            const ChannelId out = channelBetween(rank, 1 - rank);
            const ChannelId in = channelBetween(1 - rank, rank);
            for (int i = 0; i < kIters; ++i) {
                world.isend(out, rank, 1 - rank, {double(i)}, 8.0);
                while (!world.receive(in))
                    std::this_thread::yield();
            }
        });
    }

    std::thread reader([&world, &done] {
        while (!done.load())
            expectConsistent(world.traffic());
    });

    for (std::thread& peer : peers)
        peer.join();
    done.store(true);
    reader.join();

    const Traffic final_t = world.traffic();
    expectConsistent(final_t);
    EXPECT_EQ(final_t.totalMessages(), 2u * kIters);
    EXPECT_EQ(world.pendingCount(), 0u);
}

TEST(TrafficCounters, ResetRacesSendersWithoutTearing)
{
    constexpr int kIters = 1000;
    RankWorld world(2, /*concurrent=*/true);

    std::thread sender([&world] {
        const ChannelId out = channelBetween(0, 1);
        for (int i = 0; i < kIters; ++i)
            world.isend(out, 0, 1, {}, 8.0);
    });
    for (int i = 0; i < 50; ++i) {
        expectConsistent(world.traffic());
        world.resetTraffic();
    }
    sender.join();

    world.resetTraffic();
    EXPECT_EQ(world.traffic().totalMessages(), 0u);
    EXPECT_DOUBLE_EQ(world.traffic().totalBytes(), 0.0);
    EXPECT_EQ(world.discardPending(channelBetween(0, 1)),
              std::size_t{kIters});
}

TEST(Collectives, RendezvousUnderMailboxTraffic)
{
    constexpr int kRanks = 4;
    constexpr int kIters = 200;
    RankWorld world(kRanks, /*concurrent=*/true);

    std::vector<std::thread> ranks;
    std::atomic<int> failures{0};
    for (int rank = 0; rank < kRanks; ++rank) {
        ranks.emplace_back([&world, &failures, rank] {
            const ChannelId out =
                channelBetween(rank, (rank + 1) % kRanks);
            const ChannelId in =
                channelBetween((rank + kRanks - 1) % kRanks, rank);
            for (int i = 0; i < kIters; ++i) {
                world.isend(out, rank, (rank + 1) % kRanks,
                            {double(rank)}, 8.0);
                // Rank-order fold of {0+i, 1+i, 2+i, 3+i}.
                const double sum = world.allReduceValue(
                    rank, double(rank + i), CollOp::Sum, 8.0);
                if (sum != double(6 + kRanks * i))
                    failures.fetch_add(1);
                while (!world.receive(in))
                    std::this_thread::yield();
                world.barrier(rank);
            }
        });
    }
    for (std::thread& thread : ranks)
        thread.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(world.pendingCount(), 0u);
    EXPECT_FALSE(world.failed());
}

#if defined(VIBE_AUDIT_OWNERSHIP)

struct AuditFixtureBits
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry = makeBurgersRegistry(8);
};

TEST(OwnershipAudit, WrongRankAccessPanics)
{
    AuditFixtureBits bits;
    ExecContext ctx(ExecMode::Execute, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    Mesh mesh(config, bits.registry, ctx);
    MeshBlock& block = mesh.block(0); // owned by rank 0

    {
        // Undeclared threads (rank -1) are exempt: tests and setup
        // code touch storage freely.
        EXPECT_NO_THROW(block.cons());
    }
    {
        ownership_audit::ScopedRank as_owner(0);
        EXPECT_NO_THROW(block.cons());
    }
    {
        ownership_audit::ScopedRank as_peer(1);
        EXPECT_THROW(block.cons(), PanicError);
        EXPECT_THROW(block.flux(0), PanicError);
        {
            ownership_audit::SanctionedScope unpacking;
            EXPECT_NO_THROW(block.cons());
        }
        // Scope closed: the backstop is armed again.
        EXPECT_THROW(block.dudt(), PanicError);
    }
    // ScopedRank restored the undeclared state on the way out.
    EXPECT_NO_THROW(block.cons());
}

TEST(OwnershipAudit, DeclaredRankIsPerThread)
{
    AuditFixtureBits bits;
    ExecContext ctx(ExecMode::Execute, &bits.profiler, &bits.tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    Mesh mesh(config, bits.registry, ctx);
    MeshBlock& block = mesh.block(0);

    ownership_audit::ScopedRank as_peer(1);
    EXPECT_THROW(block.cons(), PanicError);

    // A fresh thread starts undeclared regardless of this thread's
    // declaration — thread_locals do not inherit.
    std::atomic<bool> peer_threw{true};
    std::thread other([&] {
        block.cons();
        peer_threw.store(false);
    });
    other.join();
    EXPECT_FALSE(peer_threw.load());
}

#endif // VIBE_AUDIT_OWNERSHIP

} // namespace
} // namespace vibe
