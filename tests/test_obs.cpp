/**
 * @file test_obs.cpp
 * Observability subsystem: TraceRecorder hot-path contracts (no
 * allocation steady-state, cheap when off), Chrome trace export
 * structure, MetricsRegistry + JSONL writer records, ObsConfig deck /
 * environment resolution, and the end-to-end guarantees — a
 * tracing-off run is bitwise identical to a traced run, traced
 * non-retry event counts are deterministic across pool sizes, the
 * heartbeat carries its schema through remesh + migration +
 * checkpoint cycles, and the idle/critical-path attribution obeys its
 * arithmetic identities.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "io/metrics_writer.hpp"
#include "io/trace_writer.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/obs_config.hpp"
#include "obs/trace.hpp"
#include "util/parameter_input.hpp"

// Global allocation counter for the hot-path test: the recorder's
// contract is zero allocation per recorded event in steady state.
namespace {
std::atomic<std::int64_t> g_allocations{0};
}

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace vibe {
namespace {

struct TempFile
{
    std::string path;
    explicit TempFile(std::string name) : path(std::move(name)) {}
    ~TempFile() { std::remove(path.c_str()); }
};

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

ExperimentSpec
smallNumericSpec()
{
    ExperimentSpec spec;
    spec.meshSize = 16;
    spec.blockSize = 8;
    spec.amrLevels = 2;
    spec.ncycles = 3;
    spec.numeric = true;
    spec.package = "burgers";
    spec.platform = PlatformConfig::cpu(4);
    return spec;
}

// --- TraceRecorder ----------------------------------------------------

TEST(TraceRecorder, RecordsAndDrainsSorted)
{
    TraceRecorder& recorder = TraceRecorder::instance();
    ASSERT_FALSE(TraceRecorder::enabled());
    recorder.start();
    ASSERT_TRUE(TraceRecorder::enabled());

    {
        TraceSpan outer("Outer", TraceCat::Driver, 0, 7);
        TraceSpan inner("Inner", TraceCat::Compute, 0, 7, "Stage1", 3);
    }
    traceInstant("Marker", TraceCat::Driver, 0, 7, 2.0);
    traceCounter("nblocks", 0, 7, 64.0);

    const std::vector<TraceEvent> events = recorder.drain();
    ASSERT_FALSE(TraceRecorder::enabled());
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].tsUs, events[i].tsUs);
    // RAII order: the inner span destructs (and records) first, but
    // the sort puts the enclosing span, whose ts is earlier, first.
    EXPECT_EQ(events[0].nameView(), "Outer");
    EXPECT_EQ(events[1].nameView(), "Inner");
    EXPECT_EQ(events[1].phaseView(), "Stage1");
    EXPECT_EQ(events[1].gid, 3);
    EXPECT_EQ(events[2].kind, TraceEvent::Kind::Instant);
    EXPECT_EQ(events[3].kind, TraceEvent::Kind::Counter);
    EXPECT_EQ(events[3].value, 64.0);
    EXPECT_EQ(recorder.dropped(), 0u);

    // Drained: a second drain is empty.
    EXPECT_TRUE(recorder.drain().empty());
}

TEST(TraceRecorder, DisabledSitesRecordNothing)
{
    TraceRecorder& recorder = TraceRecorder::instance();
    ASSERT_FALSE(TraceRecorder::enabled());
    {
        TraceSpan span("Ignored", TraceCat::Driver, 0);
        traceInstant("Ignored", TraceCat::Driver, 0);
        traceCounter("ignored", 0, 0, 1.0);
    }
    EXPECT_TRUE(recorder.drain().empty());
}

TEST(TraceRecorder, SteadyStateHotPathDoesNotAllocate)
{
    TraceRecorder& recorder = TraceRecorder::instance();
    recorder.start();
    // Warm up: the first record on this thread assigns a tid and
    // reserves the chunked buffer.
    traceInstant("warmup", TraceCat::Driver, 0);

    const std::int64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        TraceSpan span("HotSpan", TraceCat::Compute, 0, i);
    }
    const std::int64_t after =
        g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(before, after)
        << "recording a span allocated on the hot path";

    recorder.drain();

    // Tracing off: a span site is one relaxed load, no allocation.
    const std::int64_t off_before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        TraceSpan span("OffSpan", TraceCat::Compute, 0, i);
    }
    EXPECT_EQ(off_before, g_allocations.load(std::memory_order_relaxed));
}

// --- Chrome trace export ----------------------------------------------

TEST(TraceWriter, ChromeTraceJsonStructure)
{
    std::vector<TraceEvent> events;
    TraceEvent span;
    span.kind = TraceEvent::Kind::Span;
    span.cat = TraceCat::Comm;
    span.rank = 1;
    span.tid = 2;
    span.cycle = 5;
    span.gid = 9;
    span.tsUs = 10.0;
    span.durUs = 4.0;
    span.flags = TraceEvent::kPollRetry;
    detail::copyField(span.name, "Say \"hi\"\n");
    detail::copyField(span.phase, "Stage1");
    events.push_back(span);

    TraceEvent counter;
    counter.kind = TraceEvent::Kind::Counter;
    counter.rank = 0;
    counter.tid = 0;
    counter.tsUs = 11.0;
    counter.value = 32.0;
    detail::copyField(counter.name, "nblocks");
    events.push_back(counter);

    const std::string json = chromeTraceJson(events);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Metadata rows for every (rank) and (rank, thread) seen.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"comm\""), std::string::npos);
    // JSON escaping of the quote and newline in the span name.
    EXPECT_NE(json.find("Say \\\"hi\\\"\\n"), std::string::npos);
    EXPECT_NE(json.find("\"poll_retry\":true"), std::string::npos);
    EXPECT_NE(json.find("\"gid\":9"), std::string::npos);
    EXPECT_NE(json.find("\"phase\":\"Stage1\""), std::string::npos);
}

// --- Metrics ----------------------------------------------------------

TEST(Metrics, RegistryBasics)
{
    MetricsRegistry metrics;
    EXPECT_EQ(metrics.size(), 0u);
    metrics.set("b.second", 2.0);
    metrics.set("a.first", 1.0);
    metrics.add("a.first", 0.5);
    EXPECT_TRUE(metrics.has("a.first"));
    EXPECT_FALSE(metrics.has("missing"));
    EXPECT_EQ(metrics.get("a.first"), 1.5);
    EXPECT_EQ(metrics.get("missing"), 0.0);
    // std::map: deterministic name-sorted iteration for the writer.
    const auto& values = metrics.values();
    EXPECT_EQ(values.begin()->first, "a.first");
    metrics.clear();
    EXPECT_EQ(metrics.size(), 0u);
}

TEST(Metrics, WriterEmitsCycleAndFooterRecords)
{
    TempFile file("test_obs_metrics.jsonl");
    {
        MetricsWriter writer(file.path);
        MetricsRegistry cycle;
        cycle.set("cycle", 1);
        cycle.set("wall_seconds", 0.25);
        writer.writeCycle(cycle);

        std::map<std::string, std::string> identity;
        identity["git"] = "deadbeef";
        identity["package"] = "burgers";
        MetricsRegistry totals;
        totals.set("cycles", 1);
        writer.writeFooter(identity, totals);
        EXPECT_EQ(writer.records(), 2);
    }
    const std::string text = readFile(file.path);
    EXPECT_NE(text.find("\"type\":\"cycle\""), std::string::npos);
    EXPECT_NE(text.find("\"type\":\"footer\""), std::string::npos);
    EXPECT_NE(text.find("\"git\":\"deadbeef\""), std::string::npos);
    EXPECT_NE(text.find("\"cycle\":1"), std::string::npos);
    // One record per line, footer last.
    std::istringstream lines(text);
    std::string line;
    std::vector<std::string> records;
    while (std::getline(lines, line))
        if (!line.empty())
            records.push_back(line);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records.back().find("{\"type\":\"footer\""), 0u);
}

// --- ObsConfig --------------------------------------------------------

TEST(ObsConfig, DeckKnobsWinOverEnvironment)
{
    ::setenv("VIBE_TRACE", "env_trace.json", 1);
    ::setenv("VIBE_METRICS", "env_metrics.jsonl", 1);
    const ObsConfig env = ObsConfig::fromEnv();
    EXPECT_EQ(env.tracePath, "env_trace.json");
    EXPECT_EQ(env.metricsPath, "env_metrics.jsonl");
    EXPECT_TRUE(env.any());

    ParameterInput pin;
    pin.set("obs", "trace", "deck_trace.json");
    const ObsConfig merged = ObsConfig::fromParams(pin);
    EXPECT_EQ(merged.tracePath, "deck_trace.json");
    EXPECT_EQ(merged.metricsPath, "env_metrics.jsonl");

    ::unsetenv("VIBE_TRACE");
    ::unsetenv("VIBE_METRICS");
    const ObsConfig off = ObsConfig::fromEnv();
    EXPECT_FALSE(off.any());
    EXPECT_NE(std::string(buildDescribe()), "");
}

// --- End-to-end guarantees --------------------------------------------

TEST(ObsEndToEnd, TracingOffIsBitwiseIdenticalToTracingOn)
{
    ExperimentSpec spec = smallNumericSpec();
    spec.numThreads = 2;
    const ExperimentResult off = Experiment(spec).run();

    TempFile trace("test_obs_equiv.trace.json");
    TempFile metrics("test_obs_equiv.metrics.jsonl");
    ExperimentSpec traced = spec;
    traced.tracePath = trace.path;
    traced.metricsPath = metrics.path;
    const ExperimentResult on = Experiment(traced).run();

    ASSERT_EQ(off.history.size(), on.history.size());
    for (std::size_t c = 0; c < off.history.size(); ++c) {
        EXPECT_EQ(off.history[c].mass, on.history[c].mass);
        EXPECT_EQ(off.history[c].dt, on.history[c].dt);
        EXPECT_EQ(off.history[c].nblocks, on.history[c].nblocks);
    }
    EXPECT_EQ(off.finalBlocks, on.finalBlocks);
    EXPECT_EQ(off.zoneCycles, on.zoneCycles);
}

/** Per-name counts of deterministic (non-poll-retry) traced events. */
std::map<std::string, int>
tracedEventCounts(const std::string& package, int ranks, int threads)
{
    ExperimentSpec spec = smallNumericSpec();
    spec.package = package;
    spec.numRanks = ranks;
    spec.numThreads = threads;

    TraceRecorder& recorder = TraceRecorder::instance();
    recorder.start();
    Experiment(spec).run();
    const std::vector<TraceEvent> events = recorder.drain();
    EXPECT_EQ(recorder.dropped(), 0u);

    std::map<std::string, int> counts;
    for (const TraceEvent& event : events) {
        if (event.flags & TraceEvent::kPollRetry)
            continue;
        ++counts[std::string(event.nameView())];
    }
    EXPECT_FALSE(counts.empty());
    return counts;
}

TEST(ObsEndToEnd, EventCountsDeterministicAcrossThreadCounts)
{
    for (const char* package : {"burgers", "advection"}) {
        for (int ranks : {1, 2}) {
            const auto baseline =
                tracedEventCounts(package, ranks, 1);
            for (int threads : {2, 4}) {
                const auto counts =
                    tracedEventCounts(package, ranks, threads);
                EXPECT_EQ(baseline, counts)
                    << package << " with " << ranks
                    << " rank(s): non-retry event counts changed "
                    << "between 1 and " << threads << " threads";
            }
        }
    }
}

TEST(ObsEndToEnd, HeartbeatCarriesSchemaThroughRemeshAndCheckpoint)
{
    TempFile metrics("test_obs_heartbeat.metrics.jsonl");
    TempFile ckpt("test_obs_heartbeat.ckpt");
    ExperimentSpec spec = smallNumericSpec();
    spec.ncycles = 6;
    spec.numRanks = 2;
    spec.numThreads = 2;
    spec.metricsPath = metrics.path;
    spec.checkpointEvery = 3;
    spec.checkpointPath = ckpt.path;
    const ExperimentResult result = Experiment(spec).run();
    EXPECT_GT(result.checkpointsWritten, 0);

    const std::string text = readFile(metrics.path);
    std::istringstream lines(text);
    std::string line;
    int cycles = 0;
    int footers = 0;
    const char* required[] = {
        "\"cycle\":",        "\"time\":",
        "\"dt\":",           "\"wall_seconds\":",
        "\"nblocks\":",      "\"amr.refined\":",
        "\"lb.moved_blocks\":", "\"checkpoint.seconds\":",
        "\"task.idle_seconds\":",
        "\"task.critical_path_seconds\":",
        "\"traffic.remote_messages\":", "\"pool.hits\":",
        "\"fom.zone_cycles_per_s\":",
    };
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        if (line.find("\"type\":\"cycle\"") != std::string::npos) {
            ++cycles;
            for (const char* key : required)
                EXPECT_NE(line.find(key), std::string::npos)
                    << "cycle record missing " << key << ": " << line;
        } else if (line.find("\"type\":\"footer\"") !=
                   std::string::npos) {
            ++footers;
            EXPECT_NE(line.find("\"git\":"), std::string::npos);
            EXPECT_NE(line.find("\"package\":\"burgers\""),
                      std::string::npos);
            EXPECT_NE(line.find("\"ranks\":2"), std::string::npos);
        }
    }
    EXPECT_EQ(cycles, 6);
    EXPECT_EQ(footers, 1);
}

TEST(ObsEndToEnd, IdleAttributionObeysArithmeticIdentities)
{
    ExperimentSpec spec = smallNumericSpec();
    spec.numRanks = 2;
    spec.numThreads = 2;
    const ExperimentResult result = Experiment(spec).run();

    ASSERT_FALSE(result.history.empty());
    for (const CycleStats& stats : result.history) {
        EXPECT_GT(stats.taskWallSeconds, 0.0);
        EXPECT_GT(stats.busySeconds, 0.0);
        EXPECT_GE(stats.idleSeconds, 0.0);
        EXPECT_GT(stats.criticalPathSeconds, 0.0);
        // One dependency chain cannot outweigh all tasks.
        EXPECT_LE(stats.criticalPathSeconds,
                  stats.busySeconds + 1e-9);
        ASSERT_EQ(stats.rankIdleSeconds.size(), 2u);
        double rank_sum = 0;
        for (double idle : stats.rankIdleSeconds) {
            EXPECT_GE(idle, 0.0);
            rank_sum += idle;
        }
        EXPECT_NEAR(rank_sum, stats.idleSeconds,
                    1e-9 * (1.0 + stats.idleSeconds));
    }

    const IdleSummary& idle = result.idle;
    EXPECT_GT(idle.busySeconds, 0.0);
    EXPECT_GE(idle.idleFraction(), 0.0);
    EXPECT_LE(idle.idleFraction(), 1.0);
    double wall = 0, busy = 0, idle_sum = 0, critical = 0;
    for (const CycleStats& stats : result.history) {
        wall += stats.taskWallSeconds;
        busy += stats.busySeconds;
        idle_sum += stats.idleSeconds;
        critical += stats.criticalPathSeconds;
    }
    EXPECT_NEAR(idle.taskWallSeconds, wall, 1e-12 * (1.0 + wall));
    EXPECT_NEAR(idle.busySeconds, busy, 1e-12 * (1.0 + busy));
    EXPECT_NEAR(idle.idleSeconds, idle_sum,
                1e-12 * (1.0 + idle_sum));
    EXPECT_NEAR(idle.criticalPathSeconds, critical,
                1e-12 * (1.0 + critical));
    ASSERT_EQ(idle.rankIdleSeconds.size(), 2u);
}

TEST(ObsEndToEnd, TraceFileValidatesStructurally)
{
    TempFile trace("test_obs_file.trace.json");
    ExperimentSpec spec = smallNumericSpec();
    spec.numThreads = 2;
    spec.tracePath = trace.path;
    Experiment(spec).run();

    const std::string json = readFile(trace.path);
    EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"Cycle\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"comm\""), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
}

} // namespace
} // namespace vibe
