/**
 * @file test_memory_pool.cpp
 * Block memory pool: Array4 storage adoption without redundant
 * clearing, steady-state refine/derefine churn running entirely on
 * recycled buffers, no aliasing between live blocks, and footprint /
 * state parity with the allocate-and-zero path.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "pkg/burgers_package.hpp"
#include "driver/tagger.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "mesh/block_memory_pool.hpp"
#include "mesh/mesh.hpp"
#include "util/array4.hpp"

namespace vibe {
namespace {

// --- Array4 storage adoption (the construct-then-fill fix) -----------

TEST(Array4, AdoptedStorageSkipsClearWhenAsked)
{
    std::vector<double> recycled(2 * 3 * 4 * 5, 7.5);
    const double* raw = recycled.data();
    RealArray4 a(2, 3, 4, 5, std::move(recycled), /*zero_init=*/false);
    EXPECT_EQ(a.data(), raw); // no reallocation on a size match
    EXPECT_DOUBLE_EQ(a(1, 2, 3, 4), 7.5); // recycled contents kept
}

TEST(Array4, AdoptedStorageZeroInitClearsOnce)
{
    std::vector<double> recycled(2 * 3 * 4 * 5, 7.5);
    const double* raw = recycled.data();
    RealArray4 a(2, 3, 4, 5, std::move(recycled), /*zero_init=*/true);
    EXPECT_EQ(a.data(), raw);
    for (int n = 0; n < 2; ++n)
        EXPECT_DOUBLE_EQ(a(n, 2, 3, 4), 0.0);
}

TEST(Array4, AdoptGrowsAndReleasesStorage)
{
    // A fresh pool vector arrives empty with reserved capacity.
    std::vector<double> fresh;
    fresh.reserve(24);
    RealArray4 a(2, 1, 3, 4, std::move(fresh), /*zero_init=*/false);
    EXPECT_EQ(a.size(), 24u);
    EXPECT_DOUBLE_EQ(a(1, 0, 2, 3), 0.0); // resize value-initializes
    a(1, 0, 2, 3) = 3.25;

    std::vector<double> back = a.releaseStorage();
    EXPECT_EQ(back.size(), 24u);
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.nvar(), 0);
    EXPECT_DOUBLE_EQ(back.back(), 3.25);
}

// --- BlockMemoryPool free-list behavior ------------------------------

TEST(BlockMemoryPool, HitsAndMissesAreCounted)
{
    MemoryTracker tracker;
    BlockMemoryPool pool(&tracker);

    auto first = pool.acquire(100);
    EXPECT_EQ(pool.freshAllocs(), 1u);
    EXPECT_EQ(pool.poolHits(), 0u);
    EXPECT_EQ(first.size(), 0u); // fresh storage: reserved, not sized
    EXPECT_GE(first.capacity(), 100u);

    first.resize(100, 1.0);
    pool.release(std::move(first));
    EXPECT_EQ(pool.idleBuffers(), 1u);
    EXPECT_EQ(pool.idleBytes(), 100 * sizeof(double));

    auto second = pool.acquire(100);
    EXPECT_EQ(pool.poolHits(), 1u);
    EXPECT_EQ(pool.freshAllocs(), 1u);
    EXPECT_EQ(second.size(), 100u); // recycled storage arrives sized
    EXPECT_EQ(pool.idleBuffers(), 0u);

    // Different size: separate bucket, fresh allocation.
    auto other = pool.acquire(64);
    EXPECT_EQ(pool.freshAllocs(), 2u);

    // Tracker mirror.
    EXPECT_EQ(tracker.poolHits(), 1u);
    EXPECT_EQ(tracker.poolMisses(), 2u);
    EXPECT_EQ(tracker.poolHitBytes(), 100 * sizeof(double));
    EXPECT_EQ(tracker.poolMissBytes(), (100 + 64) * sizeof(double));
}

TEST(BlockMemoryPool, EmptyReleaseIgnoredAndTrimDrops)
{
    BlockMemoryPool pool;
    pool.release(std::vector<double>{});
    EXPECT_EQ(pool.idleBuffers(), 0u);

    pool.release(std::vector<double>(10, 0.0));
    pool.release(std::vector<double>(20, 0.0));
    EXPECT_EQ(pool.idleBuffers(), 2u);
    EXPECT_EQ(pool.peakIdleBytes(), 30 * sizeof(double));
    pool.trim();
    EXPECT_EQ(pool.idleBuffers(), 0u);
    EXPECT_EQ(pool.idleBytes(), 0u);
    // Peak survives trim (high-water semantics).
    EXPECT_EQ(pool.peakIdleBytes(), 30 * sizeof(double));
}

// --- Steady-state refine/derefine churn ------------------------------

struct PoolMeshBits
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry = makeBurgersRegistry(4);
};

MeshConfig
churnConfig(bool use_pool)
{
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 2;
    config.useMemoryPool = use_pool;
    return config;
}

/** One refine + derefine round trip of the corner block. */
void
churnOnce(Mesh& mesh)
{
    RefinementFlagMap refine;
    refine[{0, 0, 0, 0}] = RefinementFlag::Refine;
    mesh.applyTreeUpdate(mesh.updateTree(refine), 0);

    RefinementFlagMap deref;
    for (int idx = 0; idx < 8; ++idx)
        deref[LogicalLocation{0, 0, 0, 0}.child(
            idx & 1, (idx >> 1) & 1, (idx >> 2) & 1)] =
            RefinementFlag::Derefine;
    mesh.applyTreeUpdate(mesh.updateTree(deref), 0);
}

TEST(BlockMemoryPool, SteadyStateChurnIsAllPoolHits)
{
    PoolMeshBits bits;
    ExecContext ctx(ExecMode::Execute, &bits.profiler, &bits.tracker);
    Mesh mesh(churnConfig(true), bits.registry, ctx);
    ASSERT_NE(mesh.memoryPool(), nullptr);

    // Warm-up: the first round trips populate the free list (children
    // are created while the parent still holds its storage, so the
    // steady-state working set is one refine event's worth of extra
    // buffers).
    churnOnce(mesh);
    churnOnce(mesh);

    const std::uint64_t fresh_after_warmup =
        mesh.memoryPool()->freshAllocs();
    const std::uint64_t hits_before = mesh.memoryPool()->poolHits();
    const std::size_t idle_before = mesh.memoryPool()->idleBytes();

    for (int round = 0; round < 5; ++round)
        churnOnce(mesh);

    // Zero net allocator growth: every steady-state request is a hit.
    EXPECT_EQ(mesh.memoryPool()->freshAllocs(), fresh_after_warmup);
    EXPECT_GT(mesh.memoryPool()->poolHits(), hits_before);
    // The free list itself reaches steady state too.
    EXPECT_EQ(mesh.memoryPool()->idleBytes(), idle_before);
    EXPECT_LE(mesh.memoryPool()->idleBytes(),
              mesh.memoryPool()->peakIdleBytes());
}

TEST(BlockMemoryPool, LiveBlocksNeverAliasBuffers)
{
    PoolMeshBits bits;
    ExecContext ctx(ExecMode::Execute, &bits.profiler, &bits.tracker);
    Mesh mesh(churnConfig(true), bits.registry, ctx);
    churnOnce(mesh);
    churnOnce(mesh);
    // Leave the mesh in a refined state so recycled child buffers are
    // live simultaneously.
    RefinementFlagMap refine;
    refine[{0, 0, 0, 0}] = RefinementFlag::Refine;
    mesh.applyTreeUpdate(mesh.updateTree(refine), 0);

    std::set<const double*> seen;
    std::size_t arrays = 0;
    auto check = [&](const RealArray4& a) {
        if (a.empty())
            return;
        ++arrays;
        EXPECT_TRUE(seen.insert(a.data()).second)
            << "two live blocks share one backing store";
    };
    for (const auto& block : mesh.blocks()) {
        check(block->cons());
        check(block->cons0());
        check(block->dudt());
        check(block->derived());
        for (int d = 0; d < 3; ++d) {
            check(block->flux(d));
            if (block->reconL(d))
                check(*block->reconL(d));
            if (block->reconR(d))
                check(*block->reconR(d));
        }
    }
    // Every block contributes cons/cons0/dudt/derived + 3 flux + 6
    // recon arrays in 3-D.
    EXPECT_EQ(arrays, mesh.numBlocks() * 13u);
}

TEST(BlockMemoryPool, FootprintAndAllocationCallsMatchUnpooled)
{
    // The tracker records the logical footprint; recycling must not
    // change it (Fig. 10 terms are pool-independent).
    PoolMeshBits pooled_bits, plain_bits;
    ExecContext pooled_ctx(ExecMode::Execute, &pooled_bits.profiler,
                           &pooled_bits.tracker);
    ExecContext plain_ctx(ExecMode::Execute, &plain_bits.profiler,
                          &plain_bits.tracker);
    Mesh pooled(churnConfig(true), pooled_bits.registry, pooled_ctx);
    Mesh plain(churnConfig(false), plain_bits.registry, plain_ctx);
    EXPECT_EQ(plain.memoryPool(), nullptr);

    churnOnce(pooled);
    churnOnce(plain);

    EXPECT_EQ(pooled_bits.tracker.currentBytes(),
              plain_bits.tracker.currentBytes());
    EXPECT_EQ(pooled_bits.tracker.allocationCalls(),
              plain_bits.tracker.allocationCalls());
    EXPECT_EQ(pooled_bits.tracker.labelBytes("mesh/cons"),
              plain_bits.tracker.labelBytes("mesh/cons"));
}

TEST(BlockMemoryPool, CountingModeAllocatesNoPool)
{
    PoolMeshBits bits;
    ExecContext ctx(ExecMode::Count, &bits.profiler, &bits.tracker);
    Mesh mesh(churnConfig(true), bits.registry, ctx);
    // Virtual blocks materialize no arrays, so no pool either — but the
    // accounted footprint is identical to numeric mode.
    EXPECT_EQ(mesh.memoryPool(), nullptr);
    EXPECT_GT(bits.tracker.currentBytes(), 0u);
}

// --- Numerical invisibility -------------------------------------------

RealArray4
runRippleCons(bool use_pool)
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker);
    auto registry = makeBurgersRegistry(4);

    MeshConfig mesh_config;
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = 16;
    mesh_config.blockNx1 = mesh_config.blockNx2 = mesh_config.blockNx3 =
        8;
    mesh_config.amrLevels = 2;
    mesh_config.useMemoryPool = use_pool;
    Mesh mesh(mesh_config, registry, ctx);
    RankWorld world(2);

    BurgersConfig burgers_config;
    burgers_config.numScalars = 4;
    burgers_config.refineTol = 0.05;
    burgers_config.derefineTol = 0.015;
    BurgersPackage package(burgers_config);
    GradientTagger tagger(package);

    DriverConfig driver_config;
    driver_config.ncycles = 3;
    EvolutionDriver driver(mesh, package, world, tagger, driver_config);
    driver.initialize();
    driver.run();

    // Concatenate all blocks' conserved state for comparison.
    const BlockShape s = mesh.config().blockShape();
    RealArray4 all(static_cast<int>(mesh.numBlocks()),
                   registry.ncompConserved(), 1,
                   static_cast<int>(s.totalCells()));
    for (std::size_t b = 0; b < mesh.numBlocks(); ++b) {
        const RealArray4& cons =
            mesh.block(static_cast<int>(b)).cons();
        std::memcpy(all.data() + b * cons.size(), cons.data(),
                    cons.sizeBytes());
    }
    return all;
}

TEST(BlockMemoryPool, PooledRunIsBitwiseIdenticalToUnpooled)
{
    const RealArray4 pooled = runRippleCons(true);
    const RealArray4 plain = runRippleCons(false);
    ASSERT_EQ(pooled.size(), plain.size());
    EXPECT_EQ(std::memcmp(pooled.data(), plain.data(),
                          pooled.sizeBytes()),
              0);
}

} // namespace
} // namespace vibe
