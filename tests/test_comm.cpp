/**
 * @file test_comm.cpp
 * Tests for the simulated MPI world, the boundary-buffer region
 * calculus, ghost-cell exchange correctness (same-level and across
 * refinement levels), and flux-correction conservation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comm/boundary_buffers.hpp"
#include "comm/ghost_exchange.hpp"
#include "comm/rank_world.hpp"
#include "exec/execution_space.hpp"
#include "exec/kernel_profiler.hpp"
#include "pkg/burgers_package.hpp"
#include "exec/memory_tracker.hpp"
#include "mesh/mesh.hpp"
#include "util/logging.hpp"

namespace vibe {
namespace {

// --- RankWorld ---

TEST(RankWorld, SendProbeReceive)
{
    RankWorld world(2);
    ChannelId ch{{0, 0, 0, 0}, {0, 1, 0, 0}, 1, 0, 0,
                 ChannelKind::Bounds};
    EXPECT_FALSE(world.iprobe(ch));
    world.isend(ch, 0, 1, {1.0, 2.0}, 16.0);
    EXPECT_TRUE(world.iprobe(ch));
    auto msg = world.receive(ch);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->payload.size(), 2u);
    EXPECT_EQ(world.pendingCount(), 0u);
    EXPECT_FALSE(world.receive(ch).has_value());
}

TEST(RankWorld, LocalVsRemoteAccounting)
{
    RankWorld world(4);
    ChannelId a{{0, 0, 0, 0}, {0, 1, 0, 0}, 1, 0, 0,
                ChannelKind::Bounds};
    ChannelId b{{0, 1, 0, 0}, {0, 0, 0, 0}, -1, 0, 0,
                ChannelKind::Bounds};
    world.isend(a, 1, 1, {}, 100.0);
    world.isend(b, 1, 3, {}, 50.0);
    const Traffic& t = world.traffic();
    EXPECT_EQ(t.localMessages, 1u);
    EXPECT_EQ(t.remoteMessages, 1u);
    EXPECT_DOUBLE_EQ(t.localBytes, 100.0);
    EXPECT_DOUBLE_EQ(t.remoteBytes, 50.0);
    EXPECT_EQ(t.totalMessages(), 2u);
}

TEST(RankWorld, ChannelsAreIndependentQueues)
{
    RankWorld world(1);
    ChannelId a{{0, 0, 0, 0}, {0, 1, 0, 0}, 1, 0, 0,
                ChannelKind::Bounds};
    ChannelId flux = a;
    flux.kind = ChannelKind::Flux;
    world.isend(a, 0, 0, {1.0}, 8.0);
    world.isend(flux, 0, 0, {2.0}, 8.0);
    EXPECT_DOUBLE_EQ(world.receive(flux)->payload[0], 2.0);
    EXPECT_DOUBLE_EQ(world.receive(a)->payload[0], 1.0);
}

TEST(RankWorld, CollectivesCount)
{
    RankWorld world(8);
    world.allGather(64.0);
    world.allReduce(8.0);
    EXPECT_EQ(world.traffic().allGathers, 1u);
    EXPECT_EQ(world.traffic().allReduces, 1u);
    EXPECT_DOUBLE_EQ(world.traffic().collectiveBytes, 64.0 * 8 + 8.0);
}

TEST(RankWorld, RankRangeChecked)
{
    RankWorld world(2);
    ChannelId ch{{0, 0, 0, 0}, {0, 1, 0, 0}, 1, 0, 0,
                 ChannelKind::Bounds};
    EXPECT_THROW(world.isend(ch, 0, 5, {}, 0.0), PanicError);
}

// --- Fixture building a mesh + exchange machinery ---

struct CommFixture
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry = makeBurgersRegistry(8);
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<RankWorld> world;
    std::unique_ptr<BoundaryBufferCache> cache;
    std::unique_ptr<GhostExchange> exchange;

    CommFixture(int mesh_nx, int block_nx, int levels, ExecMode mode,
                int nranks = 1, bool randomize = false,
                int num_threads = envNumThreads())
    {
        ctx = std::make_unique<ExecContext>(
            mode, &profiler, &tracker,
            makeExecutionSpace(num_threads));
        MeshConfig config;
        config.nx1 = config.nx2 = config.nx3 = mesh_nx;
        config.blockNx1 = config.blockNx2 = config.blockNx3 = block_nx;
        config.amrLevels = levels;
        mesh = std::make_unique<Mesh>(config, registry, *ctx);
        world = std::make_unique<RankWorld>(nranks);
        cache = std::make_unique<BoundaryBufferCache>(*mesh, randomize);
        exchange =
            std::make_unique<GhostExchange>(*mesh, *world, *cache);
    }

    void refineAt(const LogicalLocation& loc)
    {
        RefinementFlagMap flags;
        flags[loc] = RefinementFlag::Refine;
        mesh->applyTreeUpdate(mesh->updateTree(flags), 0);
        cache->rebuild();
    }
};

// --- Region calculus ---

TEST(BoundaryBuffers, UniformChannelCountsAndSizes)
{
    CommFixture f(32, 8, 1, ExecMode::Count);
    // 64 blocks x 26 directions.
    EXPECT_EQ(f.cache->bounds().size(), 64u * 26u);
    EXPECT_TRUE(f.cache->flux().empty());

    std::int64_t faces = 0, edges = 0, corners = 0;
    for (const auto& ch : f.cache->bounds()) {
        const int dims =
            std::abs(ch.o1) + std::abs(ch.o2) + std::abs(ch.o3);
        const std::int64_t cells = ch.wireCells();
        if (dims == 1) {
            EXPECT_EQ(cells, 4 * 8 * 8); // ng x nx x nx
            ++faces;
        } else if (dims == 2) {
            EXPECT_EQ(cells, 4 * 4 * 8);
            ++edges;
        } else {
            EXPECT_EQ(cells, 4 * 4 * 4);
            ++corners;
        }
    }
    EXPECT_EQ(faces, 64 * 6);
    EXPECT_EQ(edges, 64 * 12);
    EXPECT_EQ(corners, 64 * 8);
}

TEST(BoundaryBuffers, SameLevelRegionsCongruent)
{
    CommFixture f(32, 8, 1, ExecMode::Count);
    for (const auto& ch : f.cache->bounds()) {
        ASSERT_EQ(ch.levelDiff, 0);
        EXPECT_EQ(ch.send.cells(), ch.recv.cells());
        EXPECT_EQ(ch.send.i.count(), ch.recv.i.count());
        EXPECT_EQ(ch.send.j.count(), ch.recv.j.count());
        EXPECT_EQ(ch.send.k.count(), ch.recv.k.count());
    }
}

TEST(BoundaryBuffers, FineCoarseChannelsAppearAfterRefinement)
{
    CommFixture f(32, 8, 2, ExecMode::Count);
    f.refineAt({0, 1, 1, 1});
    int fine_to_coarse = 0, coarse_to_fine = 0;
    for (const auto& ch : f.cache->bounds()) {
        if (ch.levelDiff == 1)
            ++fine_to_coarse;
        else if (ch.levelDiff == -1)
            ++coarse_to_fine;
    }
    // Coarse receivers see touching children once per direction:
    // 6 faces x 4 + 12 edges x 2 + 8 corners x 1 = 56. Each of the 8
    // fine children sees coarse leaves through its 26 - 7 sibling
    // directions = 19, i.e. 152 — the counts are inherently
    // asymmetric, as in Parthenon's per-direction buffer geometry.
    EXPECT_EQ(fine_to_coarse, 56);
    EXPECT_EQ(coarse_to_fine, 152);
    // Flux channels: only faces, one per coarse-side face neighbor
    // entry = 4 children per face x 6 faces.
    EXPECT_EQ(f.cache->flux().size(), 24u);
}

TEST(BoundaryBuffers, RestrictedFaceWireSize)
{
    CommFixture f(32, 8, 2, ExecMode::Count);
    f.refineAt({0, 1, 1, 1});
    for (const auto& ch : f.cache->bounds()) {
        if (ch.levelDiff != 1)
            continue;
        const int dims =
            std::abs(ch.o1) + std::abs(ch.o2) + std::abs(ch.o3);
        if (dims == 1) {
            // Coarse ghost strip: ng deep x (nx/2)^2 transverse.
            EXPECT_EQ(ch.wireCells(), 4 * 4 * 4);
        }
    }
}

TEST(BoundaryBuffers, CoarseSlabIncludesPad)
{
    CommFixture f(32, 8, 2, ExecMode::Count);
    f.refineAt({0, 1, 1, 1});
    for (const auto& ch : f.cache->bounds()) {
        if (ch.levelDiff != -1)
            continue;
        const int dims =
            std::abs(ch.o1) + std::abs(ch.o2) + std::abs(ch.o3);
        if (dims == 1) {
            // Face: direction dim ng/2 coarse + 1 pad = 3; transverse
            // nx/2 + 1 pad = 5 (the fine child's half always abuts one
            // edge of the coarse sender, clamping the other pad).
            EXPECT_EQ(ch.send.cells(), 3 * 5 * 5) << ch.id.o1;
        }
    }
}

TEST(BoundaryBuffers, RandomizationPreservesChannelSet)
{
    CommFixture sorted(16, 8, 1, ExecMode::Count, 1, false);
    CommFixture shuffled(16, 8, 1, ExecMode::Count, 1, true);
    EXPECT_EQ(sorted.cache->bounds().size(),
              shuffled.cache->bounds().size());
    EXPECT_EQ(sorted.cache->totalWireCells(),
              shuffled.cache->totalWireCells());
}

TEST(BoundaryBuffers, RemoteAccountingFollowsRanks)
{
    CommFixture f(32, 8, 1, ExecMode::Count, 2);
    // All blocks on rank 0: nothing remote.
    EXPECT_EQ(f.cache->remoteChannelCount(), 0u);
    EXPECT_DOUBLE_EQ(f.cache->remoteWireBytes(), 0.0);
    // Move half the blocks to rank 1.
    for (const auto& block : f.mesh->blocks())
        if (block->gid() >= 32)
            block->setRank(1);
    EXPECT_GT(f.cache->remoteChannelCount(), 0u);
    EXPECT_GT(f.cache->remoteWireBytes(), 0.0);
}

// --- Ghost exchange numerical correctness ---

/** Smooth periodic test field. */
double
testField(int n, double x, double y, double z)
{
    constexpr double two_pi = 6.283185307179586;
    return std::sin(two_pi * x) * std::cos(two_pi * y) +
           0.5 * std::sin(two_pi * z) + 0.1 * n;
}

void
fillInterior(Mesh& mesh)
{
    const BlockShape s = mesh.config().blockShape();
    const int ncomp = mesh.registry().ncompConserved();
    for (const auto& block : mesh.blocks()) {
        const BlockGeometry& g = block->geom();
        for (int n = 0; n < ncomp; ++n)
            for (int k = s.ks(); k <= s.ke(); ++k)
                for (int j = s.js(); j <= s.je(); ++j)
                    for (int i = s.is(); i <= s.ie(); ++i)
                        block->cons()(n, k, j, i) = testField(
                            n, g.x1c(i - s.is()), g.x2c(j - s.js()),
                            g.x3c(k - s.ks()));
    }
}

TEST(GhostExchange, SameLevelGhostsExact)
{
    CommFixture f(16, 8, 1, ExecMode::Execute);
    fillInterior(*f.mesh);
    f.exchange->exchangeBounds();

    const BlockShape s = f.mesh->config().blockShape();
    for (const auto& block : f.mesh->blocks()) {
        const BlockGeometry& g = block->geom();
        // Every ghost cell must hold the periodic field value at its
        // physical position.
        for (int n = 0; n < 3; ++n)
            for (int k = 0; k < s.nk(); ++k)
                for (int j = 0; j < s.nj(); ++j)
                    for (int i = 0; i < s.ni(); ++i) {
                        const bool interior =
                            i >= s.is() && i <= s.ie() && j >= s.js() &&
                            j <= s.je() && k >= s.ks() && k <= s.ke();
                        if (interior)
                            continue;
                        const double expect = testField(
                            n, g.x1c(i - s.is()), g.x2c(j - s.js()),
                            g.x3c(k - s.ks()));
                        ASSERT_NEAR(block->cons()(n, k, j, i), expect,
                                    1e-12)
                            << block->loc().str() << " ghost " << i
                            << "," << j << "," << k;
                    }
    }
}

TEST(GhostExchange, ConstantFieldExactAcrossLevels)
{
    CommFixture f(16, 8, 2, ExecMode::Execute);
    f.refineAt({0, 0, 0, 0});
    for (const auto& block : f.mesh->blocks())
        block->cons().fill(7.25);
    f.exchange->exchangeBounds();
    const BlockShape s = f.mesh->config().blockShape();
    for (const auto& block : f.mesh->blocks())
        for (int k = 0; k < s.nk(); ++k)
            for (int j = 0; j < s.nj(); ++j)
                for (int i = 0; i < s.ni(); ++i)
                    ASSERT_NEAR(block->cons()(0, k, j, i), 7.25, 1e-13)
                        << block->loc().str();
}

TEST(GhostExchange, FineToCoarseGhostsAreRestrictedAverages)
{
    CommFixture f(16, 8, 2, ExecMode::Execute);
    f.refineAt({0, 0, 0, 0});
    fillInterior(*f.mesh);
    f.exchange->exchangeBounds();

    // Coarse block (0;1,0,0) receives restricted data from fine
    // children of (0;0,0,0) across its -x face. The coarse ghost value
    // must equal the mean of the 8 covering fine cells.
    MeshBlock* coarse = f.mesh->find({0, 1, 0, 0});
    ASSERT_NE(coarse, nullptr);
    const BlockShape s = f.mesh->config().blockShape();
    // Fine neighbor touching the low-x face of `coarse` at y,z in the
    // first half: child (1;1,0,0) of (0;0,0,0).
    MeshBlock* fine = f.mesh->find({1, 1, 0, 0});
    ASSERT_NE(fine, nullptr);

    // Coarse ghost cell (is-1, js, ks) covers fine cells
    // (ie-1..ie, js..js+1, ks..ks+1).
    double sum = 0;
    for (int dk = 0; dk < 2; ++dk)
        for (int dj = 0; dj < 2; ++dj)
            for (int di = 0; di < 2; ++di)
                sum += fine->cons()(0, s.ks() + dk, s.js() + dj,
                                    s.ie() - 1 + di);
    EXPECT_NEAR(coarse->cons()(0, s.ks(), s.js(), s.is() - 1), sum / 8.0,
                1e-12);
}

TEST(GhostExchange, CoarseToFineGhostsLinearInBulk)
{
    CommFixture f(16, 8, 2, ExecMode::Execute);
    f.refineAt({0, 0, 0, 0});
    // Linear field: limited prolongation reproduces it exactly where
    // the slab provides full slopes (inner ghost layers).
    const BlockShape s = f.mesh->config().blockShape();
    for (const auto& block : f.mesh->blocks()) {
        const BlockGeometry& g = block->geom();
        for (int k = 0; k < s.nk(); ++k)
            for (int j = 0; j < s.nj(); ++j)
                for (int i = 0; i < s.ni(); ++i)
                    block->cons()(0, k, j, i) = 2.0 * g.x1c(i - s.is()) +
                                                3.0 * g.x2c(j - s.js()) -
                                                g.x3c(k - s.ks());
    }
    f.exchange->exchangeBounds();

    // Fine block (1;0,0,0) receives coarse data across its +x face
    // from coarse neighbor... its +x neighbor at fine level is sibling
    // (1;1,0,0); instead check the fine block at the refined corner
    // whose -x ghosts come from the coarse wrap or +x from coarse
    // (0;1,0,0): fine child (1;1,1,1) has +x coarse neighbor (0;1,0,0).
    MeshBlock* fine = f.mesh->find({1, 1, 1, 1});
    ASSERT_NE(fine, nullptr);
    const BlockGeometry& g = fine->geom();
    // Inner-most ghost layer on +x face (full slopes available).
    const int i = s.ie() + 1;
    for (int k = s.ks() + 2; k <= s.ke() - 2; ++k)
        for (int j = s.js() + 2; j <= s.je() - 2; ++j) {
            const double expect = 2.0 * g.x1c(i - s.is()) +
                                  3.0 * g.x2c(j - s.js()) -
                                  g.x3c(k - s.ks());
            ASSERT_NEAR(fine->cons()(0, k, j, i), expect, 1e-11)
                << "ghost " << i << "," << j << "," << k;
        }
}

TEST(GhostExchange, CountingModeMatchesNumericWireCells)
{
    CommFixture numeric(16, 8, 2, ExecMode::Execute);
    CommFixture counting(16, 8, 2, ExecMode::Count);
    numeric.refineAt({0, 0, 0, 0});
    counting.refineAt({0, 0, 0, 0});
    fillInterior(*numeric.mesh);
    numeric.exchange->exchangeBounds();
    counting.exchange->exchangeBounds();
    EXPECT_EQ(numeric.exchange->lastWireCells(),
              counting.exchange->lastWireCells());
    EXPECT_EQ(numeric.cache->totalWireCells(),
              counting.cache->totalWireCells());
}

TEST(GhostExchange, NumericSmallBlockAmrIsRejected)
{
    // MeshBlockSize 4 with ng = 4 cannot fill coarse ghosts from one
    // fine neighbor; numeric mode must refuse (counting mode allows).
    KernelProfiler profiler;
    MemoryTracker tracker;
    auto registry = makeBurgersRegistry(2);
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker);
    MeshConfig config;
    config.nx1 = config.nx2 = config.nx3 = 16;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 4;
    config.amrLevels = 2;
    Mesh mesh(config, registry, ctx);
    RankWorld world(1);
    BoundaryBufferCache cache(mesh, false);
    EXPECT_THROW(GhostExchange(mesh, world, cache), FatalError);
}

TEST(FluxCorrection, CoarseFaceFluxBecomesFineAverage)
{
    CommFixture f(16, 8, 2, ExecMode::Execute);
    f.refineAt({0, 0, 0, 0});
    const BlockShape s = f.mesh->config().blockShape();
    const int ncomp = f.registry.ncompConserved();

    // Give every block a distinctive flux field.
    for (const auto& block : f.mesh->blocks())
        for (int d = 0; d < 3; ++d)
            block->flux(d).fill(block->loc().level == 1 ? 2.0 : 0.5);

    f.exchange->exchangeFluxCorrections();

    // Coarse (0;1,0,0) shares its -x face with fine children: its
    // x-flux at i=is on that face must now be the fine average (2.0).
    MeshBlock* coarse = f.mesh->find({0, 1, 0, 0});
    ASSERT_NE(coarse, nullptr);
    for (int n = 0; n < ncomp; ++n) {
        EXPECT_NEAR(coarse->flux(0)(n, s.ks(), s.js(), s.is()), 2.0,
                    1e-13);
        // Interior faces unchanged.
        EXPECT_NEAR(coarse->flux(0)(n, s.ks(), s.js(), s.is() + 1), 0.5,
                    1e-13);
    }
}

TEST(GhostExchange, AbandonedCycleDoesNotLeavePhantomMessages)
{
    // Regression: per-cycle state (pending receives, wire counter,
    // undelivered mailbox entries) is reset at the top of
    // StartReceiveBoundBufs. Abandon a cycle right after its sends —
    // exactly the state an exception thrown mid-cycle leaves behind —
    // and the next full exchange must neither wait on phantom
    // messages nor deliver the stale ones.
    CommFixture f(16, 8, 1, ExecMode::Execute);
    fillInterior(*f.mesh);

    f.exchange->startReceiveBoundBufs();
    f.exchange->sendBoundBufs();
    ASSERT_GT(f.world->pendingCount(), 0u); // the abandoned deliveries

    // Perturb the field so stale buffers are distinguishable from
    // freshly packed ones.
    for (const auto& block : f.mesh->blocks())
        block->cons()(0, 6, 6, 6) += 1.0;

    f.exchange->exchangeBounds();
    EXPECT_EQ(f.world->pendingCount(), 0u);
    EXPECT_EQ(f.exchange->lastWireCells(), f.cache->totalWireCells());

    // Ghosts must reflect the *current* field: interior index (6,6,6)
    // of each block lands in some neighbor's ghost region, and a stale
    // buffer would carry the unperturbed value there.
    const BlockShape s = f.mesh->config().blockShape();
    bool checked = false;
    for (const auto& ch : f.cache->bounds()) {
        if (ch.o1 != 1 || ch.o2 != 0 || ch.o3 != 0)
            continue;
        // Same-level +x face channel: sender cells [is, is+ng-1] map
        // onto receiver ghosts [ie+1, ie+ng]; sender (6,6,6) is inside
        // the send box only for ng >= 3, so check a cell that is:
        // sender interior (is+2, 6, 6) -> receiver ghost (ie+3, 6, 6).
        const double sent = ch.sender->cons()(0, 6, 6, s.is() + 2);
        const double got = ch.receiver->cons()(0, 6, 6, s.ie() + 3);
        ASSERT_NEAR(got, sent, 0.0) << ch.receiver->loc().str();
        checked = true;
    }
    EXPECT_TRUE(checked);
}

TEST(FluxCorrection, ConservationHoldsOnSerialAndThreadPoolSpaces)
{
    // The coarse face flux must equal the restricted fine-flux average
    // across a 2-level mesh after exchangeFluxCorrections(), with real
    // solver fluxes (not synthetic fills), on both execution backends.
    for (int threads : {1, 4}) {
        CommFixture f(16, 8, 2, ExecMode::Execute, 1, false, threads);
        f.refineAt({0, 0, 0, 0});
        fillInterior(*f.mesh);
        f.exchange->exchangeBounds();

        BurgersConfig bc;
        bc.numScalars = 8; // matches the fixture registry
        BurgersPackage package(bc);
        package.calculateFluxes(*f.mesh);

        // Regression: abandon a flux-correction send mid-cycle; the
        // next cycle's reset must also drop stale *flux* messages, not
        // just bounds buffers.
        for (const auto& block : f.mesh->blocks())
            f.exchange->sendBlockFluxCorrections(*block);
        ASSERT_GT(f.world->pendingCount(), 0u);
        f.exchange->startReceiveBoundBufs();
        ASSERT_EQ(f.world->pendingCount(), 0u);

        f.exchange->exchangeFluxCorrections();
        EXPECT_EQ(f.world->pendingCount(), 0u);

        const BlockShape s = f.mesh->config().blockShape();
        const int ndim = s.ndim;
        const int ncomp = f.registry.ncompConserved();
        const int lo[3] = {s.is(), s.js(), s.ks()};
        const int nfine = 1 << (ndim - 1);
        ASSERT_FALSE(f.cache->flux().empty());
        for (const auto& ch : f.cache->flux()) {
            const RealArray4& fine = ch.sender->flux(ch.dir);
            const RealArray4& coarse = ch.receiver->flux(ch.dir);
            for (int n = 0; n < ncomp; ++n)
                for (int K = ch.recvFaces.k.lo; K <= ch.recvFaces.k.hi;
                     ++K)
                    for (int J = ch.recvFaces.j.lo;
                         J <= ch.recvFaces.j.hi; ++J)
                        for (int I = ch.recvFaces.i.lo;
                             I <= ch.recvFaces.i.hi; ++I) {
                            const int cidx[3] = {I, J, K};
                            int fidx[3] = {0, 0, 0};
                            for (int d = 0; d < 3; ++d) {
                                if (d == ch.dir)
                                    fidx[d] = ch.sendFaceIdx;
                                else if (d < ndim)
                                    fidx[d] = lo[d] +
                                              2 * (cidx[d] - lo[d]) -
                                              ch.base2[d];
                            }
                            double sum = 0.0;
                            for (int dk = 0;
                                 dk <=
                                 (ndim >= 3 && ch.dir != 2 ? 1 : 0);
                                 ++dk)
                                for (int dj = 0;
                                     dj <= (ndim >= 2 && ch.dir != 1
                                                ? 1
                                                : 0);
                                     ++dj)
                                    for (int di = 0;
                                         di <= (ch.dir != 0 ? 1 : 0);
                                         ++di)
                                        sum += fine(n, fidx[2] + dk,
                                                    fidx[1] + dj,
                                                    fidx[0] + di);
                            ASSERT_NEAR(coarse(n, K, J, I), sum / nfine,
                                        1e-13)
                                << threads << " threads, dir " << ch.dir
                                << " face (" << I << "," << J << ","
                                << K << ")";
                        }
        }
    }
}

TEST(GhostExchange, PerBlockFactoriesMatchMonolithicCycle)
{
    // The task-graph factories (sendBlockBounds / pollBlockBounds /
    // setBlockBounds) must reproduce the monolithic 4-phase cycle
    // bit for bit when driven in the same order.
    CommFixture mono(16, 8, 1, ExecMode::Execute, 1, false, 1);
    CommFixture split(16, 8, 1, ExecMode::Execute, 1, false, 1);
    fillInterior(*mono.mesh);
    fillInterior(*split.mesh);

    mono.exchange->exchangeBounds();

    split.exchange->startReceiveBoundBufs();
    for (const auto& block : split.mesh->blocks())
        split.exchange->sendBlockBounds(*block);
    for (const auto& block : split.mesh->blocks())
        EXPECT_TRUE(split.exchange->pollBlockBounds(*block));
    for (const auto& block : split.mesh->blocks())
        split.exchange->setBlockBounds(*block);

    EXPECT_EQ(split.exchange->lastWireCells(),
              mono.exchange->lastWireCells());
    EXPECT_EQ(split.world->pendingCount(), 0u);
    const auto& mono_blocks = mono.mesh->blocks();
    const auto& split_blocks = split.mesh->blocks();
    ASSERT_EQ(mono_blocks.size(), split_blocks.size());
    for (std::size_t b = 0; b < mono_blocks.size(); ++b) {
        const RealArray4& x = mono_blocks[b]->cons();
        const RealArray4& y = split_blocks[b]->cons();
        ASSERT_EQ(x.size(), y.size());
        for (std::size_t v = 0; v < x.size(); ++v)
            ASSERT_EQ(x.data()[v], y.data()[v])
                << mono_blocks[b]->loc().str();
    }
}

TEST(GhostExchange, ProfilerSeesFourPhases)
{
    CommFixture f(16, 8, 1, ExecMode::Count);
    f.exchange->exchangeBounds();
    const auto& kernels = f.profiler.kernels();
    EXPECT_TRUE(kernels.count({"SendBoundBufs", "SendBoundBufs"}));
    EXPECT_TRUE(kernels.count({"SetBounds", "SetBounds"}));
    const auto& serial = f.profiler.serial();
    EXPECT_TRUE(
        serial.count({"StartReceiveBoundBufs", "recv_buf_prepare"}));
    EXPECT_TRUE(serial.count({"ReceiveBoundBufs", "recv_poll"}));
}

} // namespace
} // namespace vibe
