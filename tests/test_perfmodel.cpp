/**
 * @file test_perfmodel.cpp
 * Tests for the performance-model stack: occupancy calculator, kernel
 * timing, serial cost model, memory model (incl. the §VIII-B closed
 * forms), opcode model, and the assembled execution model's
 * directional properties.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "perfmodel/execution_model.hpp"
#include "perfmodel/memory_model.hpp"
#include "perfmodel/occupancy.hpp"
#include "perfmodel/opcode_model.hpp"
#include "perfmodel/serial_model.hpp"

namespace vibe {
namespace {

// --- PlatformConfig ---

TEST(Platform, Labels)
{
    EXPECT_EQ(PlatformConfig::cpu(96).label(), "CPU 96R");
    EXPECT_EQ(PlatformConfig::gpu(1, 12).label(), "1 GPU 12R");
    EXPECT_EQ(PlatformConfig::gpu(8, 8).label(), "8 GPUs 8R");
    EXPECT_EQ(PlatformConfig::gpu(1, 1, 2).label(), "1 GPU 1R x2N");
}

TEST(Platform, Validation)
{
    EXPECT_THROW(PlatformConfig::cpu(0), PanicError);
    EXPECT_THROW(PlatformConfig::gpu(2, 1), PanicError);
    EXPECT_DOUBLE_EQ(PlatformConfig::gpu(4, 16).ranksPerGpu(), 4.0);
}

TEST(Platform, RooflineKneeMatchesPaper)
{
    // Paper §VII-A: H100 operational intensity knee = 10.1 flops/byte.
    GpuSpec gpu;
    EXPECT_NEAR(gpu.rooflineKnee(), 10.1, 0.1);
}

// --- Occupancy ---

TEST(Occupancy, CalculateFluxesRegisterLimit)
{
    // >100 regs/thread with 128-thread blocks -> 4 blocks/SM ->
    // 16 warps = 25% (paper: ~24%, "active warps limited to four"
    // blocks).
    GpuSpec gpu;
    auto occ = computeOccupancy({104, 128, 0}, gpu);
    EXPECT_EQ(occ.blocksPerSm, 4);
    EXPECT_EQ(occ.activeWarpsPerSm, 16);
    EXPECT_NEAR(occ.occupancy, 0.25, 1e-12);
}

TEST(Occupancy, LowRegisterKernelsReachFullOccupancy)
{
    GpuSpec gpu;
    auto occ = computeOccupancy({32, 128, 0}, gpu);
    EXPECT_NEAR(occ.occupancy, 1.0, 1e-12);
}

TEST(Occupancy, MidRegisterKernels)
{
    GpuSpec gpu;
    EXPECT_NEAR(computeOccupancy({64, 128, 0}, gpu).occupancy, 0.5,
                1e-12);
    EXPECT_NEAR(computeOccupancy({80, 128, 0}, gpu).occupancy, 0.375,
                1e-12);
}

TEST(Occupancy, SharedMemoryLimits)
{
    GpuSpec gpu;
    auto occ = computeOccupancy({32, 128, 114 * 1024}, gpu);
    EXPECT_EQ(occ.blocksPerSm, 2);
}

TEST(Occupancy, MonotoneInRegisters)
{
    GpuSpec gpu;
    double prev = 1.0;
    for (int regs : {32, 48, 64, 96, 128, 192, 255}) {
        const double occ = computeOccupancy({regs, 128, 0}, gpu).occupancy;
        EXPECT_LE(occ, prev + 1e-12) << regs;
        prev = occ;
    }
}

// --- KernelModel ---

KernelStats
makeStats(double items, double flops_per_item, double bytes_per_item,
          double inner, std::uint64_t launches = 100)
{
    KernelStats stats;
    stats.launches = launches;
    stats.items = items;
    stats.flops = items * flops_per_item;
    stats.bytes = items * bytes_per_item;
    stats.innermostSum = inner * static_cast<double>(launches);
    return stats;
}

TEST(KernelModel, GpuDurationScalesWithWork)
{
    KernelModel model{Calibration{}};
    GpuSpec gpu;
    const auto small = model.evaluateGpu(
        "CalculateFluxes", makeStats(1e6, 4000, 1100, 32), gpu);
    const auto large = model.evaluateGpu(
        "CalculateFluxes", makeStats(4e6, 4000, 1100, 32), gpu);
    EXPECT_GT(large.duration, 3.0 * small.duration);
}

TEST(KernelModel, NarrowRowsDegradeWarpUtilAndSmUtil)
{
    KernelModel model{Calibration{}};
    GpuSpec gpu;
    const auto wide = model.evaluateGpu(
        "CalculateFluxes", makeStats(1e6, 4000, 1100, 32), gpu);
    const auto narrow = model.evaluateGpu(
        "CalculateFluxes", makeStats(1e6, 4000, 1100, 16), gpu);
    EXPECT_GT(wide.warpUtil, narrow.warpUtil);
    EXPECT_GT(wide.smUtil, narrow.smUtil);
    // Paper Table III: warp util 94 -> 68, SM util 95 -> 32.
    EXPECT_NEAR(wide.warpUtil, 0.94, 0.05);
    EXPECT_NEAR(narrow.warpUtil, 0.68, 0.08);
    EXPECT_NEAR(wide.smUtil, 0.95, 0.05);
    EXPECT_NEAR(narrow.smUtil, 0.32, 0.08);
}

TEST(KernelModel, LaunchOverheadDominatesTinyKernels)
{
    KernelModel model{Calibration{}};
    GpuSpec gpu;
    // Many tiny launches: duration ~ launches x (pack-amortized)
    // overhead, far above the roofline time of the tiny payload.
    const Calibration cal;
    const auto timing = model.evaluateGpu(
        "SetBounds", makeStats(1e4, 1, 16, 8, 10000), gpu);
    EXPECT_GT(timing.duration, 10000 * cal.gpu.launchOverhead * 0.99);
    EXPECT_GT(timing.duration, 10.0 * (1e4 * 16) /
                                   (gpu.hbmBandwidthGBs * 1e9));
}

TEST(KernelModel, ArithmeticIntensityReported)
{
    KernelModel model{Calibration{}};
    GpuSpec gpu;
    const auto timing = model.evaluateGpu(
        "CalculateFluxes", makeStats(1e6, 4400, 1000, 32), gpu);
    EXPECT_NEAR(timing.arithIntensity, 4.4, 1e-9);
}

TEST(KernelModel, MemoryBoundKernelTracksBandwidth)
{
    KernelModel model{Calibration{}};
    GpuSpec gpu;
    // Few launches so per-launch overhead does not mask the
    // bandwidth bound.
    const auto timing = model.evaluateGpu(
        "WeightedSumData", makeStats(1e7, 55, 350, 32, 10), gpu);
    EXPECT_TRUE(timing.memoryBound);
    // BW util should approach the kernel's memEfficiency (0.52).
    EXPECT_NEAR(timing.bwUtil, 0.52, 0.07);
}

TEST(KernelModel, OccupancyColumnsMatchPaperShape)
{
    KernelModel model{Calibration{}};
    GpuSpec gpu;
    auto occ_of = [&](const char* name) {
        return model
            .evaluateGpu(name, makeStats(1e6, 100, 100, 32), gpu)
            .occupancy;
    };
    EXPECT_NEAR(occ_of("CalculateFluxes"), 0.25, 0.03);  // paper 24.1%
    EXPECT_NEAR(occ_of("WeightedSumData"), 1.00, 0.10);  // paper 92.7%
    EXPECT_NEAR(occ_of("SetBounds"), 0.50, 0.05);        // paper 51.5%
    EXPECT_NEAR(occ_of("FluxDivergence"), 1.00, 0.10);   // paper 94.5%
    EXPECT_NEAR(occ_of("EstTimeMesh"), 0.25, 0.03);      // paper 24.2%
    EXPECT_NEAR(occ_of("CalculateDerived"), 0.375, 0.05); // paper 36.9%
}

TEST(KernelModel, CpuKernelsScaleWithRanks)
{
    KernelModel model{Calibration{}};
    CpuSpec cpu;
    const auto stats = makeStats(1e8, 400, 300, 32);
    const double t16 = model.evaluateCpu(stats, cpu, 16);
    const double t96 = model.evaluateCpu(stats, cpu, 96);
    EXPECT_GT(t16, t96);
    EXPECT_GT(t16 / t96, 2.0); // sub-linear due to bandwidth ceiling
}

TEST(KernelModel, UnknownKernelUsesGenericDescriptor)
{
    KernelModel model{Calibration{}};
    GpuSpec gpu;
    const auto timing =
        model.evaluateGpu("SomethingNew", makeStats(1e6, 10, 80, 32),
                          gpu);
    EXPECT_GT(timing.duration, 0.0);
    EXPECT_GT(timing.occupancy, 0.0);
}

// --- SerialModel ---

TEST(SerialModel, ReplicatedWorkIgnoresRanks)
{
    SerialModel model{Calibration{}};
    const double t1 =
        model.evaluate("tree_update_flags", 1e6, PlatformConfig::cpu(1));
    const double t96 = model.evaluate("tree_update_flags", 1e6,
                                      PlatformConfig::cpu(96));
    EXPECT_DOUBLE_EQ(t1, t96);
    EXPECT_TRUE(SerialModel::isReplicated("tree_update_flags"));
    EXPECT_FALSE(SerialModel::isReplicated("recv_poll"));
}

TEST(SerialModel, DistributedWorkDividesByRanks)
{
    SerialModel model{Calibration{}};
    const double t1 =
        model.evaluate("bound_buf_metadata", 1e6, PlatformConfig::cpu(1));
    const double t8 = model.evaluate("bound_buf_metadata", 1e6,
                                     PlatformConfig::cpu(8));
    // Near-ideal division, damped by the rank-saturation term.
    EXPECT_GT(t1 / t8, 6.0);
    EXPECT_LE(t1 / t8, 8.0);
}

TEST(SerialModel, CollectivesGrowWithRanks)
{
    SerialModel model{Calibration{}};
    const double t2 =
        model.evaluate("collective", 100, PlatformConfig::gpu(1, 2));
    const double t16 =
        model.evaluate("collective", 100, PlatformConfig::gpu(1, 16));
    EXPECT_GT(t16, t2);
}

TEST(SerialModel, GpuMetadataPaysH2dPenalty)
{
    SerialModel model{Calibration{}};
    const double cpu = model.evaluate("buffer_cache_metadata", 1e5,
                                      PlatformConfig::cpu(4));
    const double gpu = model.evaluate("buffer_cache_metadata", 1e5,
                                      PlatformConfig::gpu(1, 4));
    EXPECT_GT(gpu, 2.0 * cpu);
}

TEST(SerialModel, SortCostIsSuperlinear)
{
    SerialModel model{Calibration{}};
    const double t1 = model.evaluate("buffer_cache_keys", 1e4,
                                     PlatformConfig::cpu(1));
    const double t2 = model.evaluate("buffer_cache_keys", 2e4,
                                     PlatformConfig::cpu(1));
    EXPECT_GT(t2, 2.0 * t1);
}

TEST(SerialModel, MultiNodeRemoteBytesCostMore)
{
    SerialModel model{Calibration{}};
    const double one = model.evaluate("msg_remote_bytes", 1e9,
                                      PlatformConfig::cpu(96, 1));
    const double two = model.evaluate("msg_remote_bytes", 1e9,
                                      PlatformConfig::cpu(96, 2));
    EXPECT_GT(two, one);
}

// --- MemoryModel ---

TEST(MemoryModel, PaperSection8bClosedForms)
{
    // §VIII-B worked example: nx1 = 8, ng = 4, num_scalar = 8,
    // 4096 MeshBlocks -> 8.858 GB; 1024 ThreadBlocks, d = 2 ->
    // 0.138 GB.
    const double before =
        MemoryModel::auxBytesUnoptimized(4096, 8, 4, 8);
    EXPECT_NEAR(before / 1e9, 8.858, 0.01);
    const double after =
        MemoryModel::auxBytesOptimized(1024, 8, 4, 8, 2);
    EXPECT_NEAR(after / 1e9, 0.138, 0.001);
    EXPECT_GT(before / after, 60.0);
}

TEST(MemoryModel, GpuOomWallAtHighRanks)
{
    // Anchor §IV-E: mesh 128/B8/L3 with 12 ranks/GPU ~ 75.5 GB (fits);
    // 16 ranks OOMs. Kokkos bytes chosen at the anchor's scale.
    MemoryModel model{Calibration{}, GpuSpec{}, CpuSpec{}};
    MemoryInputs inputs12;
    inputs12.kokkosBytes = static_cast<std::size_t>(24.0 * (1ull << 30));
    inputs12.remoteWireBytes = 2e8;
    inputs12.remoteMsgsPerCycle = 8e4;
    auto inputs16 = inputs12;
    inputs16.remoteMsgsPerCycle = 1.05e5; // more ranks, more traffic
    const auto r12 = model.evaluate(inputs12, PlatformConfig::gpu(1, 12));
    const auto r16 = model.evaluate(inputs16, PlatformConfig::gpu(1, 16));
    EXPECT_FALSE(r12.oom);
    EXPECT_NEAR(r12.totalGB, 75.5, 12.0);
    EXPECT_TRUE(r16.oom);
}

TEST(MemoryModel, KokkosTermConstantAcrossRanks)
{
    MemoryModel model{Calibration{}, GpuSpec{}, CpuSpec{}};
    MemoryInputs inputs;
    inputs.kokkosBytes = 10ull << 30;
    const auto a = model.evaluate(inputs, PlatformConfig::gpu(1, 2));
    const auto b = model.evaluate(inputs, PlatformConfig::gpu(1, 8));
    EXPECT_DOUBLE_EQ(a.kokkosGB, b.kokkosGB);
    EXPECT_GT(b.mpiGB, a.mpiGB);
}

TEST(MemoryModel, MultiGpuSplitsFootprint)
{
    MemoryModel model{Calibration{}, GpuSpec{}, CpuSpec{}};
    MemoryInputs inputs;
    inputs.kokkosBytes = 64ull << 30;
    const auto one = model.evaluate(inputs, PlatformConfig::gpu(1, 1));
    const auto four = model.evaluate(inputs, PlatformConfig::gpu(4, 4));
    EXPECT_NEAR(four.kokkosGB, one.kokkosGB / 4.0, 1e-9);
}

TEST(MemoryModel, CpuCapacityIsNodeDram)
{
    MemoryModel model{Calibration{}, GpuSpec{}, CpuSpec{}};
    MemoryInputs inputs;
    inputs.kokkosBytes = 100ull << 30;
    const auto report =
        model.evaluate(inputs, PlatformConfig::cpu(96));
    EXPECT_DOUBLE_EQ(report.capacityGB, 1024.0);
    EXPECT_FALSE(report.oom);
}

// --- OpcodeModel ---

TEST(OpcodeModel, MixesNormalize)
{
    OpcodeModel model;
    auto kernel = model.kernelCounts(1e9, 3e8, 1e7, 32);
    const auto& m = kernel.mix;
    EXPECT_NEAR(m.ldst + m.vec + m.fp + m.intg + m.reg + m.ctrl +
                    m.other,
                1.0, 1e-9);
    EXPECT_GT(kernel.instructions, 0.0);
}

TEST(OpcodeModel, VectorShareShrinksWithNarrowRows)
{
    // Paper Fig. 13: kernel vector share 63% (B32) -> 52% (B16).
    OpcodeModel model;
    const auto wide = model.kernelCounts(1e9, 3e8, 1e7, 32);
    const auto narrow = model.kernelCounts(1e9, 3e8, 1e7, 16);
    EXPECT_GT(wide.mix.vec, narrow.mix.vec);
}

TEST(OpcodeModel, SerialMixIsLoadStoreHeavy)
{
    OpcodeModel model;
    const auto serial = model.serialCounts(1e6);
    EXPECT_NEAR(serial.mix.ldst, 0.40, 0.02); // paper: 39-41%
    EXPECT_LT(serial.mix.vec, 0.05);
}

TEST(OpcodeModel, KernelInstructionsDominateTotal)
{
    // Paper: kernel instructions are >99% of the total.
    OpcodeModel model;
    const auto kernel = model.kernelCounts(1e11, 3e10, 1e9, 32);
    const auto serial = model.serialCounts(1e6);
    const auto total = OpcodeModel::combine(kernel, serial);
    EXPECT_GT(kernel.instructions / total.instructions, 0.99);
}

// --- ExecutionModel directional properties ---

RunArtifacts
syntheticArtifacts(KernelProfiler& profiler)
{
    // Small synthetic workload: one compute kernel + serial records.
    profiler.setPhase("CalculateFluxes");
    for (int rank = 0; rank < 4; ++rank)
        profiler.record({"CalculateFluxes", "", rank, 50, 2.5e7, 1e11,
                         2.5e10, 16});
    profiler.setPhase("SendBoundBufs");
    profiler.recordSerial({"", "bound_buf_metadata", 0, 2e5});
    profiler.setPhase("UpdateMeshBlockTree");
    profiler.recordSerial({"", "tree_update_flags", 0, 4e4});
    profiler.recordSerial({"", "collective", 0, 20});

    RunArtifacts artifacts;
    artifacts.profiler = &profiler;
    artifacts.ncycles = 10;
    artifacts.zoneCycles = 4e7;
    artifacts.kokkosBytes = 4ull << 30;
    artifacts.remoteWireBytes = 1e7;
    artifacts.remoteMsgsPerCycle = 1e4;
    return artifacts;
}

TEST(ExecutionModel, PhasesPopulated)
{
    KernelProfiler profiler;
    auto artifacts = syntheticArtifacts(profiler);
    ExecutionModel model;
    const auto report =
        model.evaluate(artifacts, PlatformConfig::gpu(1, 1));
    EXPECT_GT(report.phaseTotal("CalculateFluxes"), 0.0);
    EXPECT_GT(report.phaseTotal("SendBoundBufs"), 0.0);
    EXPECT_GT(report.phaseTotal("UpdateMeshBlockTree"), 0.0);
    EXPECT_DOUBLE_EQ(report.phaseTotal("Nonexistent"), 0.0);
    EXPECT_NEAR(report.totalTime,
                report.kernelTime + report.serialTime, 1e-12);
    EXPECT_GT(report.fom, 0.0);
}

TEST(ExecutionModel, MoreRanksPerGpuReduceSerialTime)
{
    KernelProfiler profiler;
    auto artifacts = syntheticArtifacts(profiler);
    ExecutionModel model;
    const auto r1 = model.evaluate(artifacts, PlatformConfig::gpu(1, 1));
    const auto r8 = model.evaluate(artifacts, PlatformConfig::gpu(1, 8));
    EXPECT_LT(r8.serialTime, r1.serialTime);
    EXPECT_GT(r8.fom, r1.fom);
}

TEST(ExecutionModel, MoreGpusReduceKernelTime)
{
    KernelProfiler profiler;
    auto artifacts = syntheticArtifacts(profiler);
    ExecutionModel model;
    const auto g1 = model.evaluate(artifacts, PlatformConfig::gpu(1, 4));
    const auto g4 = model.evaluate(artifacts, PlatformConfig::gpu(4, 4));
    EXPECT_LT(g4.kernelTime, g1.kernelTime);
}

TEST(ExecutionModel, CpuStrongScalingShape)
{
    KernelProfiler profiler;
    auto artifacts = syntheticArtifacts(profiler);
    ExecutionModel model;
    double prev_total = 1e30;
    for (int ranks : {4, 8, 16, 32, 48}) {
        const auto report =
            model.evaluate(artifacts, PlatformConfig::cpu(ranks));
        EXPECT_LT(report.totalTime, prev_total) << ranks << " ranks";
        prev_total = report.totalTime;
    }
}

TEST(ExecutionModel, KernelTableOnGpuOnly)
{
    KernelProfiler profiler;
    auto artifacts = syntheticArtifacts(profiler);
    ExecutionModel model;
    const auto gpu = model.evaluate(artifacts, PlatformConfig::gpu(1, 1));
    EXPECT_TRUE(gpu.kernels.count("CalculateFluxes"));
    EXPECT_GT(gpu.e2eSmUtil, 0.0);
    const auto cpu = model.evaluate(artifacts, PlatformConfig::cpu(16));
    EXPECT_TRUE(cpu.kernels.empty());
}

TEST(ExecutionModel, RequiresProfiler)
{
    RunArtifacts artifacts;
    ExecutionModel model;
    EXPECT_THROW(model.evaluate(artifacts, PlatformConfig::cpu(1)),
                 PanicError);
}

} // namespace
} // namespace vibe
