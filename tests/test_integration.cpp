/**
 * @file test_integration.cpp
 * End-to-end numerical integration tests: convergence of the
 * WENO5/HLL/RK2 scheme on smooth data, long-run stability, AMR churn
 * under the gradient tagger, and invariant checks over full driver
 * runs.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "pkg/burgers_package.hpp"
#include "driver/tagger.hpp"
#include "exec/execution_space.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"

namespace vibe {
namespace {

struct Sim
{
    KernelProfiler profiler;
    MemoryTracker tracker;
    VariableRegistry registry;
    std::unique_ptr<ExecContext> ctx;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<RankWorld> world;
    BurgersPackage package;

    Sim(int mesh_nx, int block_nx, int levels, int scalars = 2,
        ExecMode mode = ExecMode::Execute,
        InitialCondition ic = InitialCondition::Ripple)
        : registry(makeBurgersRegistry(scalars)),
          package([scalars, ic] {
              BurgersConfig config;
              config.numScalars = scalars;
              config.ic = ic;
              return config;
          }())
    {
        // VIBE_NUM_THREADS (the CI threaded matrix leg) routes every
        // integration run through the threaded executor; results are
        // bitwise identical to serial by design.
        ctx = std::make_unique<ExecContext>(
            mode, &profiler, &tracker,
            makeExecutionSpace(envNumThreads()));
        MeshConfig config;
        config.nx1 = config.nx2 = config.nx3 = mesh_nx;
        config.blockNx1 = config.blockNx2 = config.blockNx3 = block_nx;
        config.amrLevels = levels;
        mesh = std::make_unique<Mesh>(config, registry, *ctx);
        world = std::make_unique<RankWorld>(2);
    }
};

/**
 * Advection accuracy: with a tiny, smooth velocity field the scalar
 * field is transported nearly rigidly; halving dx should shrink the
 * error superlinearly (the formal order is limited here by the
 * first-order-in-space coupling of HLL at sonic points, so we only
 * require convergence, not fifth order).
 */
double
advectionError(int mesh_nx)
{
    Sim sim(mesh_nx, mesh_nx / 2, 1, 2, ExecMode::Execute,
            InitialCondition::Sine);
    GradientTagger tagger(sim.package);
    DriverConfig config;
    config.ncycles = 4;
    EvolutionDriver driver(*sim.mesh, sim.package, *sim.world, tagger,
                           config);
    driver.initialize();

    // Reference: initial state snapshot.
    std::vector<double> before;
    const BlockShape s = sim.mesh->config().blockShape();
    for (const auto& block : sim.mesh->blocks())
        for (int k = s.ks(); k <= s.ke(); ++k)
            for (int j = s.js(); j <= s.je(); ++j)
                for (int i = s.is(); i <= s.ie(); ++i)
                    before.push_back(block->cons()(3, k, j, i));

    driver.run();

    // Error vs initial state after a very short time: dominated by
    // spatial truncation, shrinking with resolution.
    double err = 0;
    std::size_t idx = 0;
    for (const auto& block : sim.mesh->blocks())
        for (int k = s.ks(); k <= s.ke(); ++k)
            for (int j = s.js(); j <= s.je(); ++j)
                for (int i = s.is(); i <= s.ie(); ++i)
                    err += std::fabs(block->cons()(3, k, j, i) -
                                     before[idx++]);
    return err / static_cast<double>(idx);
}

TEST(Integration, SmoothTransportStaysAccurate)
{
    // Short-time evolution of a smooth field deviates only slightly
    // from the initial state at either resolution and stays finite.
    // (The deviation mixes genuine physics with truncation error, so
    // resolutions are not directly comparable; the solver's formal
    // accuracy is established by the WENO5/RK2 convergence tests.)
    const double coarse = advectionError(8);
    const double fine = advectionError(16);
    EXPECT_LT(coarse, 0.05);
    EXPECT_LT(fine, 0.05);
    EXPECT_TRUE(std::isfinite(coarse) && std::isfinite(fine));
}

TEST(Integration, LongRunStaysFiniteAndConservative)
{
    Sim sim(16, 8, 2);
    BurgersConfig bc;
    bc.numScalars = 2;
    bc.refineTol = 0.05;
    bc.ic = InitialCondition::GaussianBlob;
    BurgersPackage package(bc);
    GradientTagger tagger(package);
    DriverConfig config;
    config.ncycles = 25;
    config.derefineGap = 5;
    EvolutionDriver driver(*sim.mesh, package, *sim.world, tagger,
                           config);
    driver.initialize();
    driver.run();

    const auto& history = driver.history();
    ASSERT_EQ(history.size(), 25u);
    for (const auto& s : history) {
        EXPECT_TRUE(std::isfinite(s.mass));
        EXPECT_GT(s.dt, 0.0);
    }
    EXPECT_NEAR(history.back().mass, history.front().mass,
                1e-10 * std::fabs(history.front().mass) + 1e-14);
    // Solution values stay bounded (no blowup).
    const BlockShape s = sim.mesh->config().blockShape();
    for (const auto& block : sim.mesh->blocks())
        for (int k = s.ks(); k <= s.ke(); ++k)
            for (int j = s.js(); j <= s.je(); ++j)
                for (int i = s.is(); i <= s.ie(); ++i)
                    for (int n = 0; n < 5; ++n)
                        ASSERT_LT(std::fabs(block->cons()(n, k, j, i)),
                                  10.0);
}

TEST(Integration, TreeStaysBalancedThroughDriverRun)
{
    Sim sim(32, 8, 3, 2, ExecMode::Count);
    SphericalWaveTagger::Params p;
    p.speed = 20.0; // force churn
    SphericalWaveTagger tagger(p);
    DriverConfig config;
    config.ncycles = 10;
    config.derefineGap = 2;
    BurgersConfig bc;
    bc.numScalars = 2;
    BurgersPackage package(bc);
    EvolutionDriver driver(*sim.mesh, package, *sim.world, tagger,
                           config);
    driver.initialize();
    for (int c = 0; c < 10; ++c) {
        driver.doCycle();
        ASSERT_TRUE(sim.mesh->tree().checkBalance()) << "cycle " << c;
        ASSERT_EQ(sim.mesh->numBlocks(), sim.mesh->tree().leafCount());
    }
    // Churn actually happened.
    int refined = 0, derefined = 0;
    for (const auto& s : driver.history()) {
        refined += s.refined;
        derefined += s.derefined;
    }
    EXPECT_GT(refined + derefined, 0);
}

TEST(Integration, NoPendingMessagesBetweenCycles)
{
    Sim sim(16, 8, 2, 2, ExecMode::Count);
    SphericalWaveTagger tagger;
    DriverConfig config;
    config.ncycles = 4;
    BurgersConfig bc;
    bc.numScalars = 2;
    BurgersPackage package(bc);
    EvolutionDriver driver(*sim.mesh, package, *sim.world, tagger,
                           config);
    driver.initialize();
    for (int c = 0; c < 4; ++c) {
        driver.doCycle();
        EXPECT_EQ(sim.world->pendingCount(), 0u) << "cycle " << c;
    }
}

TEST(Integration, ShockFormationTagsRefinement)
{
    // A Gaussian blob steepens into a front; the gradient tagger must
    // keep at least the front region refined after several cycles.
    Sim sim(16, 8, 2);
    BurgersConfig bc;
    bc.numScalars = 2;
    bc.refineTol = 0.04;
    bc.derefineTol = 0.005;
    bc.ic = InitialCondition::GaussianBlob;
    BurgersPackage package(bc);
    GradientTagger tagger(package);
    DriverConfig config;
    config.ncycles = 10;
    EvolutionDriver driver(*sim.mesh, package, *sim.world, tagger,
                           config);
    driver.initialize();
    driver.run();
    EXPECT_GT(sim.mesh->maxPresentLevel(), 0);
}

TEST(Integration, DerivedFieldMatchesDefinitionAfterRun)
{
    Sim sim(16, 8, 1, 2, ExecMode::Execute,
            InitialCondition::GaussianBlob);
    GradientTagger tagger(sim.package);
    DriverConfig config;
    config.ncycles = 3;
    EvolutionDriver driver(*sim.mesh, sim.package, *sim.world, tagger,
                           config);
    driver.initialize();
    driver.run();
    const BlockShape s = sim.mesh->config().blockShape();
    for (const auto& block : sim.mesh->blocks())
        for (int k = s.ks(); k <= s.ke(); ++k)
            for (int j = s.js(); j <= s.je(); ++j)
                for (int i = s.is(); i <= s.ie(); ++i) {
                    const auto& c = block->cons();
                    const double expect =
                        0.5 * c(3, k, j, i) *
                        (c(0, k, j, i) * c(0, k, j, i) +
                         c(1, k, j, i) * c(1, k, j, i) +
                         c(2, k, j, i) * c(2, k, j, i));
                    ASSERT_NEAR(block->derived()(0, k, j, i), expect,
                                1e-13);
                }
}

} // namespace
} // namespace vibe
