/**
 * @file test_boundary_plan.cpp
 * BoundaryPlan lifecycle and fused-path equivalence.
 *
 * - Lifecycle: the cache rebuild hook invalidates the plan exactly
 *   once per rebuild (refine/derefine/migration all route through the
 *   cache), rebuilds are lazy, and a driver run keeps the chained
 *   counters in lockstep.
 * - Staleness: a plan whose cache moved on without the chained hook is
 *   structurally unusable — every accessor throws.
 * - Elision: rank pairs that share no boundary get no PlanMessage at
 *   all; the offset directory of a real message tiles its payload
 *   exactly.
 * - Equivalence: the fused path is bitwise identical to the per-face
 *   path for both physics packages across 1/2/4 threads and 1/2/4
 *   ranks, through mid-run remeshes and real storage migrations.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "comm/boundary_buffers.hpp"
#include "comm/boundary_plan.hpp"
#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "driver/tagger.hpp"
#include "exec/execution_space.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "shard_harness.hpp"
#include "util/logging.hpp"

namespace vibe {
namespace {

using namespace shard_test;

/** Mesh + cache + plan built directly (no driver). */
struct PlanFixture
{
    std::unique_ptr<PackageDescriptor> package;
    VariableRegistry registry;
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx;
    Mesh mesh;
    RankWorld world;
    BoundaryBufferCache cache;
    BoundaryPlan plan;

    explicit PlanFixture(const MeshConfig& config, int nranks)
        : package(makePackage("advection")),
          registry(package->buildRegistry()),
          ctx(ExecMode::Execute, &profiler, &tracker,
              makeExecutionSpace(1)),
          mesh(config, registry, ctx), world(nranks),
          cache(mesh, /*randomize_keys=*/false),
          plan(mesh, cache, world)
    {
    }
};

// --- Lifecycle --------------------------------------------------------

TEST(BoundaryPlanLifecycle, HookInvalidatesOncePerRebuild)
{
    PlanFixture fx(shardMeshConfig(1, 1, false), 1);
    fx.cache.setRebuildHook([&] { fx.plan.invalidate(); });

    fx.plan.ensureBuilt();
    EXPECT_TRUE(fx.plan.current());
    EXPECT_EQ(fx.plan.buildCount(), 1u);
    EXPECT_EQ(fx.plan.invalidateCount(), 0u);

    for (int i = 1; i <= 3; ++i) {
        fx.cache.rebuild();
        EXPECT_FALSE(fx.plan.current());
        EXPECT_EQ(fx.plan.invalidateCount(),
                  static_cast<std::uint64_t>(i));
    }
    // Rebuilds are lazy: three invalidations, still one build.
    EXPECT_EQ(fx.plan.buildCount(), 1u);
    fx.plan.ensureBuilt();
    EXPECT_TRUE(fx.plan.current());
    EXPECT_EQ(fx.plan.buildCount(), 2u);
    // ensureBuilt on a current plan is a no-op.
    fx.plan.ensureBuilt();
    EXPECT_EQ(fx.plan.buildCount(), 2u);
}

TEST(BoundaryPlanLifecycle, DriverKeepsPlanInLockstepThroughRemesh)
{
    // The shard workload refines, derefines, and migrates mid-run; the
    // driver chains plan invalidation into the cache hook, so after
    // the run the plan has been invalidated once per cache rebuild —
    // minus the cache's construction-time rebuild, which precedes the
    // hook installation.
    auto package = makePackage("advection");
    VariableRegistry registry = package->buildRegistry();
    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(1));
    Mesh mesh(shardMeshConfig(1, 1, false, /*fused=*/true), registry,
              ctx);
    RankWorld world(1);
    SphericalWaveTagger tagger(shardWaveParams());
    EvolutionDriver driver(mesh, *package, world, tagger,
                           shardDriverConfig());
    driver.initialize();
    driver.run();

    const BoundaryPlan& plan = driver.exchange().plan();
    const std::uint64_t rebuilds = driver.bufferCache().rebuildCount();
    EXPECT_GT(rebuilds, 1u) << "workload must remesh mid-run";
    EXPECT_EQ(plan.invalidateCount(), rebuilds - 1);
    EXPECT_TRUE(plan.current());
    EXPECT_GE(plan.buildCount(), 1u);
    EXPECT_LE(plan.buildCount(), plan.invalidateCount() + 1);
}

TEST(BoundaryPlanLifecycle, StalePlanIsStructurallyUnusable)
{
    PlanFixture fx(shardMeshConfig(1, 1, false), 1);
    // No hook chained: the cache moves on, the plan cannot notice
    // until an accessor checks the generation stamp.
    fx.plan.ensureBuilt();
    fx.cache.rebuild();
    EXPECT_THROW(fx.plan.messages(PlanPhase::Bounds), PanicError);
    EXPECT_THROW(fx.plan.sendIds(PlanPhase::Bounds, 0), PanicError);
    EXPECT_THROW(fx.plan.messageFor(PlanPhase::Flux, 0, 0), PanicError);
    // ...and unbuilt is just as unusable as stale.
    BoundaryPlan fresh(fx.mesh, fx.cache, fx.world);
    EXPECT_THROW(fresh.messages(PlanPhase::Bounds), PanicError);
    // ensureBuilt repairs the stale plan.
    fx.plan.ensureBuilt();
    EXPECT_NO_THROW(fx.plan.messages(PlanPhase::Bounds));
}

// --- Message elision and the offset directory -------------------------

TEST(BoundaryPlanDirectory, NonAdjacentRankPairsAreElided)
{
    // A 4-block chain along x (one block thick in y/z, non-periodic),
    // one block per rank: rank r touches only r-1 and r+1, so every
    // other pair must produce no PlanMessage at all.
    MeshConfig config;
    config.nx1 = 32;
    config.nx2 = config.nx3 = 8;
    config.blockNx1 = config.blockNx2 = config.blockNx3 = 8;
    config.amrLevels = 1;
    config.periodic = false;
    config.numRanks = 4;
    PlanFixture fx(config, 4);
    ASSERT_EQ(fx.mesh.numBlocks(), 4u);
    for (const auto& block : fx.mesh.blocks())
        block->setRank(static_cast<int>(block->loc().lx1));
    fx.cache.rebuild();
    fx.plan.ensureBuilt();

    // Chain adjacency: 6 directed pairs, each with a message.
    EXPECT_EQ(fx.plan.messages(PlanPhase::Bounds).size(), 6u);
    EXPECT_NE(fx.plan.messageFor(PlanPhase::Bounds, 0, 1), nullptr);
    EXPECT_NE(fx.plan.messageFor(PlanPhase::Bounds, 1, 0), nullptr);
    EXPECT_NE(fx.plan.messageFor(PlanPhase::Bounds, 2, 3), nullptr);
    // Elided: no shared boundary (0-2, 0-3, wrap), no self pairs
    // (one block per rank), never an empty message on the wire.
    EXPECT_EQ(fx.plan.messageFor(PlanPhase::Bounds, 0, 2), nullptr);
    EXPECT_EQ(fx.plan.messageFor(PlanPhase::Bounds, 0, 3), nullptr);
    EXPECT_EQ(fx.plan.messageFor(PlanPhase::Bounds, 3, 0), nullptr);
    EXPECT_EQ(fx.plan.messageFor(PlanPhase::Bounds, 0, 0), nullptr);
    for (const PlanMessage& msg :
         fx.plan.messages(PlanPhase::Bounds)) {
        EXPECT_GT(msg.doubles, 0u);
        EXPECT_FALSE(msg.entries.empty());
        // The directory tiles the payload: cumulative offsets, total
        // doubles, and modeled bytes all agree.
        std::size_t expect_offset = 0;
        for (const PlanEntry& entry : msg.entries) {
            EXPECT_EQ(entry.offset, expect_offset);
            EXPECT_GT(entry.count, 0u);
            expect_offset += entry.count;
        }
        EXPECT_EQ(msg.doubles, expect_offset);
        EXPECT_EQ(msg.bytes,
                  static_cast<double>(msg.doubles) * sizeof(double));
    }
    // Uniform mesh: no fine-coarse faces, no flux messages anywhere.
    EXPECT_TRUE(fx.plan.messages(PlanPhase::Flux).empty());

    // send/recv indices partition the message list by endpoint.
    EXPECT_EQ(fx.plan.sendIds(PlanPhase::Bounds, 0).size(), 1u);
    EXPECT_EQ(fx.plan.recvIds(PlanPhase::Bounds, 0).size(), 1u);
    EXPECT_EQ(fx.plan.sendIds(PlanPhase::Bounds, 1).size(), 2u);
    EXPECT_EQ(fx.plan.recvIds(PlanPhase::Bounds, 2).size(), 2u);
}

// --- Fused vs per-face bitwise equivalence ----------------------------

class FusedBoundaryEquivalence
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(FusedBoundaryEquivalence, FusedMatchesPerFaceBitwise)
{
    const std::string package = GetParam();
    // The per-face baseline is per thread count (mass partials are
    // chunk-ordered sums, deterministic for a fixed thread count);
    // the fused path — classic and rank-sharded — must add no
    // difference on top of it.
    for (int threads : {1, 2, 4}) {
        const ShardRun per_face =
            runClassic(package, threads, 1, false, /*fused=*/false);
        EXPECT_GT(per_face.remeshEvents, 0)
            << "workload must remesh mid-run";

        const ShardRun fused =
            runClassic(package, threads, 1, false, /*fused=*/true);
        expectBitwiseEqual(per_face, fused,
                           package + " fused classic @" +
                               std::to_string(threads) + " threads");

        for (int ranks : {2, 4}) {
            const ShardRun team = runTeam(package, ranks, threads, 1,
                                          false, /*fused=*/true);
            // The runs must exercise the real machinery: remesh-driven
            // plan rebuilds and true storage migration.
            EXPECT_GT(team.remeshEvents, 0);
            EXPECT_GT(team.movedBlocks, 0);
            expectBitwiseEqual(per_face, team,
                               package + " fused @" +
                                   std::to_string(ranks) + " ranks x " +
                                   std::to_string(threads) +
                                   " threads vs per-face classic");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Packages, FusedBoundaryEquivalence,
                         ::testing::Values("burgers", "advection"));

} // namespace
} // namespace vibe
