#!/usr/bin/env sh
# Run clang-tidy (config: .clang-tidy) over src/ and diff the findings
# against tools/tidy/baseline.txt.
#
#   tools/tidy/run_clang_tidy.sh <build-dir>              gate on new findings
#   tools/tidy/run_clang_tidy.sh <build-dir> --update     rewrite the baseline
#
# <build-dir> must hold a compile_commands.json (configure with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON). Findings are normalized to
# "relative/path:line: warning: ... [check]" and sorted, so the diff is
# stable across machines. A finding present in the baseline does not
# block; a finding absent from it does. Fixing findings without
# refreshing the baseline is fine (stale entries are ignored) but run
# --update occasionally so the baseline shrinks with the debt.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)
build_dir=${1:?usage: run_clang_tidy.sh <build-dir> [--update]}
mode=${2:-check}
baseline="$repo_root/tools/tidy/baseline.txt"
tidy=${CLANG_TIDY:-clang-tidy}

command -v "$tidy" >/dev/null 2>&1 || {
    echo "run_clang_tidy: $tidy not found (set CLANG_TIDY)" >&2
    exit 2
}
[ -f "$build_dir/compile_commands.json" ] || {
    echo "run_clang_tidy: no compile_commands.json in $build_dir" >&2
    echo "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
    exit 2
}

current=$(mktemp)
trap 'rm -f "$current" "$current.raw"' EXIT

# shellcheck disable=SC2046
"$tidy" -p "$build_dir" --quiet $(find "$repo_root/src" -name '*.cpp' | sort) \
    > "$current.raw" 2>/dev/null || true

# Keep only finding lines, strip the absolute repo prefix and the
# column number (columns shift with unrelated edits on the same line).
sed -n "s|^$repo_root/||p" "$current.raw" \
    | sed -n 's/^\([^:]*:[0-9]*\):[0-9]*: \(warning\|error\): /\1: warning: /p' \
    | sort -u > "$current"

if [ "$mode" = "--update" ]; then
    cp "$current" "$baseline"
    echo "run_clang_tidy: baseline updated ($(wc -l < "$baseline") findings)"
    exit 0
fi

if [ ! -s "$baseline" ]; then
    # Bootstrap: no baseline recorded yet. Report, do not gate — the
    # first maintainer run of --update arms the check.
    echo "run_clang_tidy: baseline is empty (bootstrap mode)"
    echo "current findings ($(wc -l < "$current")):"
    cat "$current"
    exit 0
fi

new=$(comm -13 "$baseline" "$current")
if [ -n "$new" ]; then
    echo "run_clang_tidy: NEW findings not in baseline:"
    printf '%s\n' "$new"
    exit 1
fi
echo "run_clang_tidy: clean ($(wc -l < "$current") findings, all baselined)"
