#!/usr/bin/env python3
"""validate_trace: schema validator for the observability outputs.

Validates the two artifacts the obs subsystem emits:

  Chrome trace-event JSON (src/io/trace_writer.cpp):
    - top-level {"traceEvents": [...]} with only X/i/C/M phases
    - required per-phase fields (pid/tid/ts everywhere, dur on X,
      s on i, args.name on M) with sane types and non-negative times
    - file order sorted by (ts, tid) — the drain contract
    - per (pid, tid) row, X spans properly nested: a span overlapping
      its enclosing span's end would render as garbage in Perfetto and
      indicates a torn RAII scope
    - row sanity: every pid carries a process_name metadata record and
      every (pid, tid) that records events a thread_name record

  JSONL metrics (src/io/metrics_writer.cpp):
    - every line a JSON object with a "type" field
    - "cycle" records carry the heartbeat core (cycle, time, dt,
      wall_seconds, nblocks) with monotonically increasing cycle
    - at most one "footer", on the last line, with build identity

Usage:
  validate_trace.py TRACE.json [--metrics RUN.jsonl]
  validate_trace.py --metrics RUN.jsonl
  validate_trace.py --self-test       run the fixture suite

Exit status: 0 valid, 1 findings (or fixture failures), 2 usage error.
"""

import argparse
import json
import os
import sys

VALID_PHASES = {"X", "i", "C", "M"}
METADATA_NAMES = {"process_name", "thread_name"}
CYCLE_REQUIRED = ("cycle", "time", "dt", "wall_seconds", "nblocks")
FOOTER_REQUIRED = ("git", "package")
# Timestamps are doubles in microseconds; tolerate rounding at span
# boundaries up to a tenth of a microsecond.
TS_EPS = 0.1


def _is_num(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_trace_obj(root):
    """Validate a parsed Chrome trace object; returns error strings."""
    errors = []
    if not isinstance(root, dict) or "traceEvents" not in root:
        return ['top level must be an object with "traceEvents"']
    events = root["traceEvents"]
    if not isinstance(events, list):
        return ['"traceEvents" must be a list']

    named_processes = set()
    named_threads = set()
    seen_rows = set()
    last_key = None
    open_spans = {}  # (pid, tid) -> stack of (start, end, name)

    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty name")
            continue
        pid = event.get("pid")
        tid = event.get("tid")
        if not isinstance(pid, int) or pid < 0:
            errors.append(f"{where}: pid must be a non-negative int")
            continue
        if not isinstance(tid, int) or tid < 0:
            errors.append(f"{where}: tid must be a non-negative int")
            continue

        if phase == "M":
            if name not in METADATA_NAMES:
                errors.append(f"{where}: unknown metadata {name!r}")
            elif not isinstance(
                event.get("args", {}).get("name"), str
            ):
                errors.append(f"{where}: metadata needs args.name")
            elif name == "process_name":
                named_processes.add(pid)
            else:
                named_threads.add((pid, tid))
            continue

        ts = event.get("ts")
        if not _is_num(ts) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number")
            continue
        key = (ts, tid)
        if last_key is not None and key < last_key:
            errors.append(
                f"{where}: events not sorted by (ts, tid): "
                f"{key} after {last_key}"
            )
        last_key = key
        seen_rows.add((pid, tid))

        if phase == "X":
            dur = event.get("dur")
            if not _is_num(dur) or dur < 0:
                errors.append(
                    f"{where}: span dur must be a non-negative number"
                )
                continue
            stack = open_spans.setdefault((pid, tid), [])
            while stack and ts >= stack[-1][1] - TS_EPS:
                stack.pop()
            if stack and ts + dur > stack[-1][1] + TS_EPS:
                errors.append(
                    f"{where}: span {name!r} [{ts}, {ts + dur}] "
                    f"overlaps enclosing {stack[-1][2]!r} ending at "
                    f"{stack[-1][1]} on row (pid={pid}, tid={tid})"
                )
                continue
            stack.append((ts, ts + dur, name))
        elif phase == "i":
            if event.get("s") not in ("t", "p", "g"):
                errors.append(f"{where}: instant needs scope s")
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not any(
                _is_num(v) for v in args.values()
            ):
                errors.append(
                    f"{where}: counter needs numeric args values"
                )

    for pid, tid in sorted(seen_rows):
        if pid not in named_processes:
            errors.append(f"pid {pid} has events but no process_name")
        if (pid, tid) not in named_threads:
            errors.append(
                f"row (pid={pid}, tid={tid}) has events but no "
                "thread_name"
            )
    return errors


def validate_metrics_text(text):
    """Validate JSONL metrics content; returns error strings."""
    errors = []
    footer_line = None
    last_cycle = None
    lines = [line for line in text.splitlines() if line.strip()]
    for number, line in enumerate(lines, start=1):
        where = f"line {number}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            errors.append(f"{where}: not valid JSON ({error})")
            continue
        if not isinstance(record, dict) or "type" not in record:
            errors.append(f"{where}: record must have a type field")
            continue
        kind = record["type"]
        if kind == "cycle":
            missing = [k for k in CYCLE_REQUIRED if k not in record]
            if missing:
                errors.append(
                    f"{where}: cycle record missing {missing}"
                )
                continue
            cycle = record["cycle"]
            if last_cycle is not None and cycle <= last_cycle:
                errors.append(
                    f"{where}: cycle {cycle} not increasing "
                    f"(previous {last_cycle})"
                )
            last_cycle = cycle
        elif kind == "footer":
            if footer_line is not None:
                errors.append(f"{where}: second footer record")
            footer_line = number
            missing = [k for k in FOOTER_REQUIRED if k not in record]
            if missing:
                errors.append(
                    f"{where}: footer record missing {missing}"
                )
        else:
            errors.append(f"{where}: unknown record type {kind!r}")
    if footer_line is not None and footer_line != len(lines):
        errors.append(
            f"footer on line {footer_line} is not the last record"
        )
    return errors


def validate_trace_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            root = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: cannot parse ({error})"]
    return [f"{path}: {e}" for e in validate_trace_obj(root)]


def validate_metrics_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        return [f"{path}: cannot read ({error})"]
    return [f"{path}: {e}" for e in validate_metrics_text(text)]


def self_test(fixtures_root):
    """pass/ fixtures must validate clean, fail/ must produce errors."""
    failures = []
    checked = 0
    for kind, validate in (
        ("trace", validate_trace_file),
        ("metrics", validate_metrics_file),
    ):
        for expected in ("pass", "fail"):
            base = os.path.join(fixtures_root, kind, expected)
            if not os.path.isdir(base):
                failures.append(f"missing fixture directory {base}")
                continue
            names = sorted(os.listdir(base))
            if not names:
                failures.append(f"empty fixture directory {base}")
            for name in names:
                errors = validate(os.path.join(base, name))
                checked += 1
                if expected == "pass" and errors:
                    failures.append(
                        f"{kind}/pass/{name} produced errors: {errors}"
                    )
                if expected == "fail" and not errors:
                    failures.append(
                        f"{kind}/fail/{name} validated clean"
                    )
    for failure in failures:
        print(f"self-test FAIL: {failure}")
    if not failures:
        print(f"self-test OK: {checked} fixtures validated")
    return 1 if failures else 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", default=None)
    parser.add_argument("--metrics", default=None)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    here = os.path.dirname(os.path.abspath(__file__))
    if args.self_test:
        return self_test(os.path.join(here, "fixtures"))
    if not args.trace and not args.metrics:
        parser.error("need a trace file, --metrics, or --self-test")

    errors = []
    if args.trace:
        errors.extend(validate_trace_file(args.trace))
    if args.metrics:
        errors.extend(validate_metrics_file(args.metrics))
    for error in errors:
        print(error)
    if errors:
        print(f"validate_trace: {len(errors)} finding(s)")
        return 1
    print("validate_trace: valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
