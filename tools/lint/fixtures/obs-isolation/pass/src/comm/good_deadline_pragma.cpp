// Fixture: a peer-wait deadline is control flow, not instrumentation —
// audited with a justified pragma.
#include <chrono>

void waitForPeer(Exchange& exchange)
{
    // vibe-lint: allow(obs-isolation) peer-wait deadline bounding the
    // receive loop, not timing instrumentation.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (!exchange.tryReceive())
        exchange.checkDeadline(deadline);
}
