// Fixture: timing routed through the recorder — one relaxed atomic
// load when tracing is off, a span on the timeline when on.
#include "obs/trace.hpp"

void step(Driver& driver)
{
    TraceSpan span("Step", TraceCat::Driver, driver.rank(),
                   driver.cycle());
    driver.step();
}
