// Fixture: ad-hoc wall-clock instrumentation on a driver hot path —
// invisible to the trace timeline and paid even with tracing off.
#include <chrono>

void stepAndLog(Driver& driver)
{
    const auto start = std::chrono::steady_clock::now();
    driver.step();
    driver.logSeconds(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
}
