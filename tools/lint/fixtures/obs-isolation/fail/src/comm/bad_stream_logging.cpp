// Fixture: stream logging inside the exchange poll loop — a stderr
// write per probe retry, serialized across every pool worker.
#include <iostream>

void pollOnce(Exchange& exchange)
{
    if (!exchange.tryReceive())
        std::cerr << "probe miss on " << exchange.channel() << "\n";
}
