// Fixture: a driver-side dump that bypasses the checkpoint subsystem's
// temp-file + rename durability discipline.
#include <fstream>

void dumpHistory(const char* path, const History& history)
{
    std::ofstream out(path);
    for (double dt : history.dts())
        out << dt << '\n';
}
