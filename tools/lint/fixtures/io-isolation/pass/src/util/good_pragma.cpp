// Fixture: a startup-time read of user input with an audited
// justification — the pragma covers the stream that follows it.
#include <fstream>

Deck readDeck(const char* path)
{
    // vibe-lint: allow(io-isolation) one-shot read of the user's input
    // deck at startup; not simulation-state I/O.
    std::ifstream in(path);
    return parseDeck(in);
}
