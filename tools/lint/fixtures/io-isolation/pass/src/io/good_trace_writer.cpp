// Fixture: the Chrome-trace exporter lives under src/io/ — recorders
// in other layers hand it drained events and never touch a stream.
#include <fstream>

void writeChromeTrace(const char* path, const Events& events)
{
    std::ofstream out(path, std::ios::trunc);
    out << "{\"traceEvents\":[";
    for (const Event& event : events)
        out << event.json() << ",";
    out << "]}";
}
