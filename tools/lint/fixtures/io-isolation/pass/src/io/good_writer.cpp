// Fixture: the checkpoint subsystem is where file I/O lives — src/io/
// is exempt by path.
#include <fstream>

void writeSnapshot(const char* path, const Payload& payload)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(payload.bytes(), payload.size());
}
