// Fixture: the boundary exchange itself is the audited home of
// mailbox sends — exempt by path.
void sendFused(RankWorld& world, Message msg, double bytes)
{
    world.isend(msg.id, msg.src, msg.dst, std::move(msg.payload),
                bytes);
}
