// Fixture: non-boundary traffic with an audited justification — the
// pragma covers the send that follows it.
void migrate(RankWorld& world, Block& block, int src, int dst)
{
    // vibe-lint: allow(coalesced-comm) ChannelKind::Block migration
    // payload, not boundary traffic.
    world.isend(migrationChannel(block), src, dst,
                block.serializeState(), block.bytes());
}
