// Fixture: a per-face boundary send outside the exchange — must trip
// coalesced-comm.
void leakBoundary(RankWorld& world, const Channel& ch)
{
    world.isend(ch.id, ch.src, ch.dst, packFace(ch), ch.bytes());
}
