// Fixture: hot path iterating ownedBlocks(), plus an audited
// exception covered by a pragma — both must be clean.
void advanceAll(Mesh& mesh)
{
    for (MeshBlock* block : mesh.ownedBlocks())
        advance(*block);

    // vibe-lint: allow(owned-blocks) replicated remesh structure walk,
    // metadata only.
    for (MeshBlock* block : mesh.blocks())
        retag(*block);
}
