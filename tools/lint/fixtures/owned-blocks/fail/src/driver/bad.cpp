// Fixture: un-pragmaed blocks() iteration in a driver hot path —
// must trip owned-blocks.
void advanceAll(Mesh& mesh)
{
    for (MeshBlock* block : mesh.blocks())
        advance(*block);
}
