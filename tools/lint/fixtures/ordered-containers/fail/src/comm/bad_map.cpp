// Fixture: unordered map on a message path — must trip
// ordered-containers.
#include <unordered_map>

std::unordered_map<int, Message> outbox;
