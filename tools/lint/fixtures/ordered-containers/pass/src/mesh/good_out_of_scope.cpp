// Fixture: src/mesh/ is outside the ordered-containers scope (no
// reduction or message ordering originates there), so this is clean.
#include <unordered_map>

std::unordered_map<int, int> refinement_cache;
