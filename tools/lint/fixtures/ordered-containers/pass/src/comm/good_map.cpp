// Fixture: std::map keeps deterministic iteration order, and a
// lookup-only unordered map is fine with an audited pragma.
#include <map>
#include <unordered_map>

std::map<int, Message> queue;

// vibe-lint: allow(ordered-containers) lookup-only cache keyed by
// channel id, never iterated.
std::unordered_map<int, Buffer> cache;
