// Fixture: pragma with a justification — auditable, clean.
void walk(Mesh& mesh)
{
    // vibe-lint: allow(owned-blocks) replicated structure walk.
    for (MeshBlock* block : mesh.blocks())
        retag(*block);
}
