// Fixture: pragma with no justification — must trip bare-pragma
// (and only bare-pragma: the pragma still suppresses owned-blocks).
void walk(Mesh& mesh)
{
    // vibe-lint: allow(owned-blocks)
    for (MeshBlock* block : mesh.blocks())
        retag(*block);
}
