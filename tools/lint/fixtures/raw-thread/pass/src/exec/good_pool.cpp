// Fixture: src/exec/ is exempt — pool workers ARE the sanctioned
// thread owners.
#include <thread>

void spawnWorker()
{
    std::thread worker([] { work(); });
    worker.join();
}
