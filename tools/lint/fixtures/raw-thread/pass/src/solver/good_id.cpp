// Fixture: std::thread::id and std::this_thread are fine anywhere —
// they identify threads, they do not create them.
#include <thread>

std::thread::id owner()
{
    return std::this_thread::get_id();
}
