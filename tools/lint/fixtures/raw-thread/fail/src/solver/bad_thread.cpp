// Fixture: raw std::thread outside exec/ and rank_team — must trip
// raw-thread.
#include <thread>

void sneakyParallelism()
{
    std::thread helper([] { work(); });
    helper.join();
}
