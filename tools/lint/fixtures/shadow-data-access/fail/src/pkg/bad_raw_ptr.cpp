// Fixture: caching a raw data() pointer into block storage from a
// package — must trip shadow-data-access.
void advance(MeshBlock& block)
{
    double* u = block.cons().data();
    u[0] += 1.0;
}
