// Fixture: indexed accessor use in a package — the audited accessor
// path, not a cached raw pointer. Must be clean.
void advance(MeshBlock& block)
{
    block.cons()(0, 0, 0, 0) += block.dudt()(0, 0, 0, 0);
}
