// Fixture: src/mesh/ is the sanctioned materialize/unpack layer —
// raw storage pointers are allowed here.
void serialize(MeshBlock& block, std::vector<double>& out)
{
    const double* src = block.cons().data();
    out.assign(src, src + block.cons().size());
}
