// Fixture: ambient-phase record inside the concurrent exchange path —
// must trip task-instrumentation.
void exchangeTask(ExecContext& ctx, KernelProfiler& prof)
{
    prof.recordKernel("pack", seconds);
}
