// Fixture: task-path instrumentation with explicit (phase, rank)
// attribution — the At-suffixed variants are the sanctioned API.
void exchangeTask(ExecContext& ctx, KernelProfiler& prof)
{
    prof.recordKernelAt(Phase::Comm, rank, "pack", seconds);
    prof.recordSerialAt(Phase::Comm, rank, "enqueue", seconds);
    ctx.parForAt(Phase::Comm, rank, "unpack", n, body);
}
