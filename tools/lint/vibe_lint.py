#!/usr/bin/env python3
"""vibe_lint: repo-invariant linter for the Parthenon-VIBE source tree.

Enforces the concurrency and determinism invariants that the type
system (and clang's thread-safety analysis) cannot express. Each rule
is a regex over a scoped subset of src/, with a pragma escape hatch for
audited exceptions:

    // vibe-lint: allow(<rule>) <justification>

A pragma exempts the contiguous non-blank block of code that follows it
(and its own line), so a single pragma can cover a multi-line
declaration. `vibe-lint: allow-file(<rule>)` anywhere in a file exempts
the whole file. Pragmas without a justification are themselves
findings: an exception nobody can audit is a rule violation with extra
steps.

Rule catalog (rationale lives with each rule below):

  owned-blocks          hot paths iterate ownedBlocks(), never blocks()
  raw-thread            no raw std::thread outside exec/ + rank_team
  task-instrumentation  task-path records use explicit (phase, rank)
                        record*At / parForAt attribution
  ordered-containers    no unordered containers / rand() where
                        iteration order can feed reduction or message
                        order
  shadow-data-access    no raw data() pointers into block storage
                        outside materialize/unpack paths
  io-isolation          no file I/O (fstream/fopen) outside src/io/
                        (bench/ and tools/ are outside the linted tree)

Usage:
  vibe_lint.py [--root DIR]    lint DIR/src (default: repo root)
  vibe_lint.py --self-test     run the fixture suite under fixtures/
  vibe_lint.py --list-rules    print the rule catalog

Exit status: 0 clean, 1 findings (or fixture failures), 2 usage error.
"""

import argparse
import os
import re
import sys

SOURCE_SUFFIXES = (".hpp", ".cpp", ".h", ".cc")

PRAGMA_ALLOW = re.compile(r"vibe-lint:\s*allow\(([a-z-]+)\)\s*(\S?)")
PRAGMA_ALLOW_FILE = re.compile(r"vibe-lint:\s*allow-file\(([a-z-]+)\)")
COMMENT = re.compile(r"//.*$")


class Rule:
    """One lintable invariant.

    scope:    path prefixes (relative to the scanned root) a file must
              match for the rule to apply.
    exempt:   path prefixes (or exact relative paths) never scanned.
    pattern:  violation regex, applied line-wise with comments
              stripped.
    """

    def __init__(self, name, scope, exempt, pattern, message, rationale):
        self.name = name
        self.scope = tuple(scope)
        self.exempt = tuple(exempt)
        self.pattern = re.compile(pattern)
        self.message = message
        self.rationale = rationale

    def applies_to(self, relpath):
        if not relpath.startswith(self.scope):
            return False
        return not relpath.startswith(self.exempt)


RULES = [
    Rule(
        name="owned-blocks",
        scope=("src/driver/", "src/pkg/", "src/mesh/"),
        exempt=(),
        pattern=r"(?:\.|->)\s*blocks\s*\(\)",
        message="iterate ownedBlocks(), not blocks()",
        rationale=(
            "Under rank sharding, blocks() includes storage-less "
            "Shadow replicas of blocks owned by other ranks; a hot "
            "path that touches them either crashes on empty arrays or "
            "- worse - silently double-computes after a migration "
            "relabel. Replicated structure code (remesh, the "
            "load-balance partitioner) is the audited exception."
        ),
    ),
    Rule(
        name="raw-thread",
        scope=("src/",),
        exempt=("src/exec/", "src/driver/rank_team."),
        pattern=r"std::j?thread\b(?!\s*::)",
        message=(
            "no raw std::thread outside exec/ and rank_team "
            "(use an ExecutionSpace, or the RankTeam driver threads)"
        ),
        rationale=(
            "Every thread in the system belongs to either an "
            "ExecutionSpace pool or the RankTeam; a stray std::thread "
            "bypasses the profiler/tracker owner-thread discipline, "
            "the nested-launch rule, and the team's failure "
            "propagation (markFailed), so it can deadlock a "
            "rendezvous collective nothing will ever wake."
        ),
    ),
    Rule(
        name="task-instrumentation",
        scope=("src/comm/ghost_exchange.cpp",),
        exempt=(),
        pattern=(
            r"\b(?:recordKernel|recordSerial|parFor|parForPack|"
            r"parReduce)\s*\("
        ),
        message=(
            "task-path instrumentation must use explicit (phase, rank) "
            "attribution: recordKernelAt / recordSerialAt / parForAt"
        ),
        rationale=(
            "Per-block exchange tasks run concurrently on pool "
            "workers; ambient-phase records (recordKernel, parFor) "
            "read the profiler's current phase and the context's "
            "current rank, which a neighboring task may be mutating - "
            "attribution silently lands in the wrong bucket and the "
            "overlap accounting (fig14) stops being trustworthy."
        ),
    ),
    Rule(
        name="coalesced-comm",
        scope=("src/",),
        exempt=(
            "src/comm/boundary_plan.cpp",
            "src/comm/ghost_exchange.cpp",
            "src/comm/rank_world.",
        ),
        pattern=r"(?:\.|->)\s*isend\s*\(",
        message=(
            "no direct RankWorld mailbox sends outside the boundary "
            "exchange (route boundary traffic through the "
            "BoundaryPlan / GhostExchange paths)"
        ),
        rationale=(
            "The fused BoundaryPlan path guarantees all boundary "
            "traffic per (src, dst, phase) travels as ONE coalesced "
            "message whose offset directory both endpoints derive "
            "independently; a stray per-face isend elsewhere would "
            "bypass the directory, break the message-count accounting "
            "(CycleStats.boundaryMessages), and reintroduce the "
            "O(faces) message storm the plan exists to remove. "
            "Non-boundary traffic (block migration payloads) is the "
            "audited exception: pragma it with the ChannelKind."
        ),
    ),
    Rule(
        name="ordered-containers",
        scope=("src/comm/", "src/driver/", "src/exec/", "src/solver/"),
        exempt=(),
        pattern=(
            r"std::unordered_(?:map|set)\b|\brand\s*\(|"
            r"std::random_shuffle\b"
        ),
        message=(
            "no unordered containers or rand() on reduction/message "
            "paths (hash/seed order is not deterministic across runs)"
        ),
        rationale=(
            "Bitwise rank/thread equivalence is the repo's core "
            "guarantee; it survives only because every fold and every "
            "message queue drains in a deterministic order. "
            "Hash-iteration order varies with libstdc++ version and "
            "pointer layout, rand() with global seed state - either "
            "feeding a reduction or send loop breaks equivalence in "
            "ways the tests can only catch probabilistically. "
            "Lookup-only maps are fine: pragma them with the reason."
        ),
    ),
    Rule(
        name="shadow-data-access",
        scope=("src/driver/", "src/comm/", "src/pkg/", "src/solver/"),
        exempt=(),
        pattern=(
            r"\b(?:cons0?|derived|dudt|flux)\s*\([^()]*\)\s*"
            r"(?:\.|->)\s*data\s*\(\)"
        ),
        message=(
            "no raw data() pointers into block storage outside "
            "materialize/unpack paths (mesh/)"
        ),
        rationale=(
            "A possibly-Shadow block's arrays may be empty or mid "
            "materialize; the accessor path is where the "
            "VIBE_AUDIT_OWNERSHIP backstop hooks in, and a cached raw "
            "pointer outlives both checks. Serialization and pack "
            "table construction (mesh/) are the audited exceptions."
        ),
    ),
    Rule(
        name="obs-isolation",
        scope=("src/driver/", "src/comm/", "src/pkg/", "src/solver/"),
        exempt=("src/driver/task_list.cpp",),
        pattern=(
            r"std::chrono::\w+_clock\b|\bstd::cout\b|\bstd::cerr\b|"
            r"\b(?:f|s)?printf\s*\("
        ),
        message=(
            "no ad-hoc std::chrono timing or stream logging in "
            "driver/comm/pkg/solver hot paths (record through "
            "obs/trace.hpp spans or the MetricsRegistry; pragma "
            "audited non-instrumentation clock uses)"
        ),
        rationale=(
            "Timing that bypasses the TraceRecorder is invisible to "
            "the timeline and the idle attribution, and a clock read "
            "or stream write on a task path costs even when "
            "observability is off - the recorder's contract is one "
            "relaxed atomic load per disabled site. Clock reads that "
            "are not instrumentation (peer-wait deadlines, the "
            "measured-FOM wall clock) are the audited exceptions; "
            "task_list.cpp is exempt because the executor IS the "
            "timing source the spans reuse."
        ),
    ),
    Rule(
        name="io-isolation",
        scope=("src/",),
        exempt=("src/io/",),
        pattern=r"std::(?:i|o)?fstream\b|\bfopen\s*\(|\bfreopen\s*\(",
        message=(
            "file I/O (fstream/fopen) belongs under src/io/ "
            "(bench/ and tools/ are outside the linted tree); "
            "pragma audited exceptions with the reason"
        ),
        rationale=(
            "Durability discipline lives in one place: the checkpoint "
            "subsystem writes to a temp file and atomically renames, "
            "CRC-frames every payload, and reports truncation/ "
            "corruption with a uniform error taxonomy. A stray "
            "ofstream elsewhere can tear files on a mid-write rank "
            "death and silently skip those guarantees - exactly what "
            "the recovery path must be able to rule out. Startup-time "
            "reads of user inputs (the parameter deck) are the "
            "audited exception."
        ),
    ),
]


def iter_source_files(root):
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith(SOURCE_SUFFIXES):
                path = os.path.join(dirpath, name)
                yield path, os.path.relpath(path, root).replace(
                    os.sep, "/"
                )


def allowed_lines(lines, rule_name):
    """Line numbers (1-based) exempted by allow pragmas for rule_name.

    A pragma line exempts itself and the contiguous non-blank block of
    lines that follows it.
    """
    allowed = set()
    for i, line in enumerate(lines):
        match = PRAGMA_ALLOW.search(line)
        if not match or match.group(1) != rule_name:
            continue
        allowed.add(i + 1)
        j = i + 1
        while j < len(lines) and lines[j].strip():
            allowed.add(j + 1)
            j += 1
    return allowed


def bare_pragmas(lines, relpath):
    """Findings for allow pragmas that carry no justification."""
    findings = []
    for i, line in enumerate(lines):
        match = PRAGMA_ALLOW.search(line)
        if match and not match.group(2):
            findings.append(
                (
                    relpath,
                    i + 1,
                    "bare-pragma",
                    "allow() pragma without a justification",
                )
            )
    return findings


def strip_comments(lines):
    """Line-wise comment stripping (// and /* */), keeping line count."""
    stripped = []
    in_block = False
    for line in lines:
        out = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            else:
                line_c = line.find("//", i)
                block_c = line.find("/*", i)
                if line_c >= 0 and (block_c < 0 or line_c < block_c):
                    out.append(line[i:line_c])
                    i = len(line)
                elif block_c >= 0:
                    out.append(line[i:block_c])
                    in_block = True
                    i = block_c + 2
                else:
                    out.append(line[i:])
                    i = len(line)
        stripped.append("".join(out))
    return stripped


def lint_file(path, relpath):
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    code = strip_comments(lines)
    text = "\n".join(lines)
    findings = bare_pragmas(lines, relpath)
    for rule in RULES:
        if not rule.applies_to(relpath):
            continue
        file_allow = PRAGMA_ALLOW_FILE.search(text)
        if file_allow and file_allow.group(1) == rule.name:
            continue
        allowed = allowed_lines(lines, rule.name)
        for i, line in enumerate(code):
            if rule.pattern.search(line) and (i + 1) not in allowed:
                findings.append((relpath, i + 1, rule.name, rule.message))
    return findings


def lint_tree(root):
    findings = []
    for path, relpath in iter_source_files(root):
        findings.extend(lint_file(path, relpath))
    return findings


def self_test(fixtures_root):
    """Every rule has pass/ (must be clean) and fail/ (must trip
    exactly that rule) fixture trees; bare-pragma rides on the
    dedicated fixtures under fixtures/bare-pragma/."""
    failures = []
    rule_names = [rule.name for rule in RULES] + ["bare-pragma"]
    for name in rule_names:
        base = os.path.join(fixtures_root, name)
        if not os.path.isdir(base):
            failures.append(f"{name}: missing fixture directory {base}")
            continue
        passed = lint_tree(os.path.join(base, "pass"))
        if passed:
            failures.append(
                f"{name}: pass fixtures produced findings: {passed}"
            )
        failed = lint_tree(os.path.join(base, "fail"))
        if not failed:
            failures.append(f"{name}: fail fixtures produced no finding")
        wrong = [f for f in failed if f[2] != name]
        if wrong:
            failures.append(
                f"{name}: fail fixtures tripped other rules: {wrong}"
            )
    for failure in failures:
        print(f"self-test FAIL: {failure}")
    if not failures:
        count = len(rule_names)
        print(f"self-test OK: {count} rules validated against fixtures")
    return 1 if failures else 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None)
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    here = os.path.dirname(os.path.abspath(__file__))
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.message}")
            print(f"    scope: {', '.join(rule.scope)}")
            print(f"    {rule.rationale}")
        return 0
    if args.self_test:
        return self_test(os.path.join(here, "fixtures"))

    root = args.root or os.path.normpath(os.path.join(here, "..", ".."))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"vibe_lint: no src/ under {root}", file=sys.stderr)
        return 2
    findings = lint_tree(root)
    for relpath, line, rule, message in findings:
        print(f"{relpath}:{line}: [{rule}] {message}")
    if findings:
        print(f"vibe_lint: {len(findings)} finding(s)")
        return 1
    print("vibe_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
