# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-rel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_block_pack "/root/repo/build-rel/tests/test_block_pack")
set_tests_properties(test_block_pack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_comm "/root/repo/build-rel/tests/test_comm")
set_tests_properties(test_comm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_driver "/root/repo/build-rel/tests/test_driver")
set_tests_properties(test_driver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_exec "/root/repo/build-rel/tests/test_exec")
set_tests_properties(test_exec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_exec_spaces "/root/repo/build-rel/tests/test_exec_spaces")
set_tests_properties(test_exec_spaces PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_experiment "/root/repo/build-rel/tests/test_experiment")
set_tests_properties(test_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build-rel/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_memory_pool "/root/repo/build-rel/tests/test_memory_pool")
set_tests_properties(test_memory_pool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_mesh "/root/repo/build-rel/tests/test_mesh")
set_tests_properties(test_mesh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_perfmodel "/root/repo/build-rel/tests/test_perfmodel")
set_tests_properties(test_perfmodel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build-rel/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_solver "/root/repo/build-rel/tests/test_solver")
set_tests_properties(test_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_tree "/root/repo/build-rel/tests/test_tree")
set_tests_properties(test_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_util "/root/repo/build-rel/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
