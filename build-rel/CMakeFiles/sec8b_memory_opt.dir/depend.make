# Empty dependencies file for sec8b_memory_opt.
# This may be replaced when dependencies are built.
