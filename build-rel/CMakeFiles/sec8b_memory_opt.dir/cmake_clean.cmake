file(REMOVE_RECURSE
  "CMakeFiles/sec8b_memory_opt.dir/bench/sec8b_memory_opt.cpp.o"
  "CMakeFiles/sec8b_memory_opt.dir/bench/sec8b_memory_opt.cpp.o.d"
  "bench/sec8b_memory_opt"
  "bench/sec8b_memory_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec8b_memory_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
