file(REMOVE_RECURSE
  "CMakeFiles/fig14_overlap.dir/bench/fig14_overlap.cpp.o"
  "CMakeFiles/fig14_overlap.dir/bench/fig14_overlap.cpp.o.d"
  "bench/fig14_overlap"
  "bench/fig14_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
