# Empty dependencies file for fig14_overlap.
# This may be replaced when dependencies are built.
