# Empty dependencies file for fig12_function_serial_kernel.
# This may be replaced when dependencies are built.
