file(REMOVE_RECURSE
  "CMakeFiles/fig12_function_serial_kernel.dir/bench/fig12_function_serial_kernel.cpp.o"
  "CMakeFiles/fig12_function_serial_kernel.dir/bench/fig12_function_serial_kernel.cpp.o.d"
  "bench/fig12_function_serial_kernel"
  "bench/fig12_function_serial_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_function_serial_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
