file(REMOVE_RECURSE
  "CMakeFiles/test_mesh.dir/tests/test_mesh.cpp.o"
  "CMakeFiles/test_mesh.dir/tests/test_mesh.cpp.o.d"
  "tests/test_mesh"
  "tests/test_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
