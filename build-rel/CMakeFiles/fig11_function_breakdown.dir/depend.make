# Empty dependencies file for fig11_function_breakdown.
# This may be replaced when dependencies are built.
