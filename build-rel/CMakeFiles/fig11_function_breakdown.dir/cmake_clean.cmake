file(REMOVE_RECURSE
  "CMakeFiles/fig11_function_breakdown.dir/bench/fig11_function_breakdown.cpp.o"
  "CMakeFiles/fig11_function_breakdown.dir/bench/fig11_function_breakdown.cpp.o.d"
  "bench/fig11_function_breakdown"
  "bench/fig11_function_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_function_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
