file(REMOVE_RECURSE
  "CMakeFiles/fig01_motivation.dir/bench/fig01_motivation.cpp.o"
  "CMakeFiles/fig01_motivation.dir/bench/fig01_motivation.cpp.o.d"
  "bench/fig01_motivation"
  "bench/fig01_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
