file(REMOVE_RECURSE
  "CMakeFiles/sec5_multinode.dir/bench/sec5_multinode.cpp.o"
  "CMakeFiles/sec5_multinode.dir/bench/sec5_multinode.cpp.o.d"
  "bench/sec5_multinode"
  "bench/sec5_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
