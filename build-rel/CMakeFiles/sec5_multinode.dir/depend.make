# Empty dependencies file for sec5_multinode.
# This may be replaced when dependencies are built.
