# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig07b_thread_scaling.
