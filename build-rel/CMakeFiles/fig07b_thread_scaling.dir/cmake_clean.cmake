file(REMOVE_RECURSE
  "CMakeFiles/fig07b_thread_scaling.dir/bench/fig07b_thread_scaling.cpp.o"
  "CMakeFiles/fig07b_thread_scaling.dir/bench/fig07b_thread_scaling.cpp.o.d"
  "bench/fig07b_thread_scaling"
  "bench/fig07b_thread_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07b_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
