# Empty dependencies file for fig07b_thread_scaling.
# This may be replaced when dependencies are built.
