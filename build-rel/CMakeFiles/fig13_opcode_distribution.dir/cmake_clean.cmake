file(REMOVE_RECURSE
  "CMakeFiles/fig13_opcode_distribution.dir/bench/fig13_opcode_distribution.cpp.o"
  "CMakeFiles/fig13_opcode_distribution.dir/bench/fig13_opcode_distribution.cpp.o.d"
  "bench/fig13_opcode_distribution"
  "bench/fig13_opcode_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_opcode_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
