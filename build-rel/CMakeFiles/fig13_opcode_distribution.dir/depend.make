# Empty dependencies file for fig13_opcode_distribution.
# This may be replaced when dependencies are built.
