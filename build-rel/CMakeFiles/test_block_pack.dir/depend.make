# Empty dependencies file for test_block_pack.
# This may be replaced when dependencies are built.
