file(REMOVE_RECURSE
  "CMakeFiles/test_block_pack.dir/tests/test_block_pack.cpp.o"
  "CMakeFiles/test_block_pack.dir/tests/test_block_pack.cpp.o.d"
  "tests/test_block_pack"
  "tests/test_block_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
