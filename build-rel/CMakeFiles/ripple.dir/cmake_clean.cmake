file(REMOVE_RECURSE
  "CMakeFiles/ripple.dir/examples/ripple.cpp.o"
  "CMakeFiles/ripple.dir/examples/ripple.cpp.o.d"
  "examples/ripple"
  "examples/ripple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
