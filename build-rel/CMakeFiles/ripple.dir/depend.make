# Empty dependencies file for ripple.
# This may be replaced when dependencies are built.
