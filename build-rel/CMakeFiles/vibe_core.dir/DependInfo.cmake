
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/boundary_buffers.cpp" "CMakeFiles/vibe_core.dir/src/comm/boundary_buffers.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/comm/boundary_buffers.cpp.o.d"
  "/root/repo/src/comm/ghost_exchange.cpp" "CMakeFiles/vibe_core.dir/src/comm/ghost_exchange.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/comm/ghost_exchange.cpp.o.d"
  "/root/repo/src/comm/rank_world.cpp" "CMakeFiles/vibe_core.dir/src/comm/rank_world.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/comm/rank_world.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "CMakeFiles/vibe_core.dir/src/core/experiment.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/core/experiment.cpp.o.d"
  "/root/repo/src/driver/evolution_driver.cpp" "CMakeFiles/vibe_core.dir/src/driver/evolution_driver.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/driver/evolution_driver.cpp.o.d"
  "/root/repo/src/driver/load_balance.cpp" "CMakeFiles/vibe_core.dir/src/driver/load_balance.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/driver/load_balance.cpp.o.d"
  "/root/repo/src/driver/tagger.cpp" "CMakeFiles/vibe_core.dir/src/driver/tagger.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/driver/tagger.cpp.o.d"
  "/root/repo/src/driver/task_list.cpp" "CMakeFiles/vibe_core.dir/src/driver/task_list.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/driver/task_list.cpp.o.d"
  "/root/repo/src/exec/execution_space.cpp" "CMakeFiles/vibe_core.dir/src/exec/execution_space.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/exec/execution_space.cpp.o.d"
  "/root/repo/src/exec/kernel_profiler.cpp" "CMakeFiles/vibe_core.dir/src/exec/kernel_profiler.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/exec/kernel_profiler.cpp.o.d"
  "/root/repo/src/exec/memory_tracker.cpp" "CMakeFiles/vibe_core.dir/src/exec/memory_tracker.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/exec/memory_tracker.cpp.o.d"
  "/root/repo/src/mesh/block_memory_pool.cpp" "CMakeFiles/vibe_core.dir/src/mesh/block_memory_pool.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/mesh/block_memory_pool.cpp.o.d"
  "/root/repo/src/mesh/block_pack.cpp" "CMakeFiles/vibe_core.dir/src/mesh/block_pack.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/mesh/block_pack.cpp.o.d"
  "/root/repo/src/mesh/block_tree.cpp" "CMakeFiles/vibe_core.dir/src/mesh/block_tree.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/mesh/block_tree.cpp.o.d"
  "/root/repo/src/mesh/logical_location.cpp" "CMakeFiles/vibe_core.dir/src/mesh/logical_location.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/mesh/logical_location.cpp.o.d"
  "/root/repo/src/mesh/mesh.cpp" "CMakeFiles/vibe_core.dir/src/mesh/mesh.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/mesh/mesh.cpp.o.d"
  "/root/repo/src/mesh/mesh_block.cpp" "CMakeFiles/vibe_core.dir/src/mesh/mesh_block.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/mesh/mesh_block.cpp.o.d"
  "/root/repo/src/mesh/prolong_restrict.cpp" "CMakeFiles/vibe_core.dir/src/mesh/prolong_restrict.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/mesh/prolong_restrict.cpp.o.d"
  "/root/repo/src/mesh/variable.cpp" "CMakeFiles/vibe_core.dir/src/mesh/variable.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/mesh/variable.cpp.o.d"
  "/root/repo/src/perfmodel/execution_model.cpp" "CMakeFiles/vibe_core.dir/src/perfmodel/execution_model.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/perfmodel/execution_model.cpp.o.d"
  "/root/repo/src/perfmodel/kernel_model.cpp" "CMakeFiles/vibe_core.dir/src/perfmodel/kernel_model.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/perfmodel/kernel_model.cpp.o.d"
  "/root/repo/src/perfmodel/memory_model.cpp" "CMakeFiles/vibe_core.dir/src/perfmodel/memory_model.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/perfmodel/memory_model.cpp.o.d"
  "/root/repo/src/perfmodel/occupancy.cpp" "CMakeFiles/vibe_core.dir/src/perfmodel/occupancy.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/perfmodel/occupancy.cpp.o.d"
  "/root/repo/src/perfmodel/opcode_model.cpp" "CMakeFiles/vibe_core.dir/src/perfmodel/opcode_model.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/perfmodel/opcode_model.cpp.o.d"
  "/root/repo/src/perfmodel/platform.cpp" "CMakeFiles/vibe_core.dir/src/perfmodel/platform.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/perfmodel/platform.cpp.o.d"
  "/root/repo/src/perfmodel/serial_model.cpp" "CMakeFiles/vibe_core.dir/src/perfmodel/serial_model.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/perfmodel/serial_model.cpp.o.d"
  "/root/repo/src/solver/burgers.cpp" "CMakeFiles/vibe_core.dir/src/solver/burgers.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/solver/burgers.cpp.o.d"
  "/root/repo/src/solver/reconstruct.cpp" "CMakeFiles/vibe_core.dir/src/solver/reconstruct.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/solver/reconstruct.cpp.o.d"
  "/root/repo/src/solver/rk2.cpp" "CMakeFiles/vibe_core.dir/src/solver/rk2.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/solver/rk2.cpp.o.d"
  "/root/repo/src/util/parameter_input.cpp" "CMakeFiles/vibe_core.dir/src/util/parameter_input.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/util/parameter_input.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/vibe_core.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/vibe_core.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/vibe_core.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
