# Empty dependencies file for vibe_core.
# This may be replaced when dependencies are built.
