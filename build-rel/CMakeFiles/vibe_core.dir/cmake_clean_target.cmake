file(REMOVE_RECURSE
  "libvibe_core.a"
)
