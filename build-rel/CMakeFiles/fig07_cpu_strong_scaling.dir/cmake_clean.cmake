file(REMOVE_RECURSE
  "CMakeFiles/fig07_cpu_strong_scaling.dir/bench/fig07_cpu_strong_scaling.cpp.o"
  "CMakeFiles/fig07_cpu_strong_scaling.dir/bench/fig07_cpu_strong_scaling.cpp.o.d"
  "bench/fig07_cpu_strong_scaling"
  "bench/fig07_cpu_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cpu_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
