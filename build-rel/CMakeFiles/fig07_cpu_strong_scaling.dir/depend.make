# Empty dependencies file for fig07_cpu_strong_scaling.
# This may be replaced when dependencies are built.
