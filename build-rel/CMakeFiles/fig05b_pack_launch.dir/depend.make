# Empty dependencies file for fig05b_pack_launch.
# This may be replaced when dependencies are built.
