file(REMOVE_RECURSE
  "CMakeFiles/fig05b_pack_launch.dir/bench/fig05b_pack_launch.cpp.o"
  "CMakeFiles/fig05b_pack_launch.dir/bench/fig05b_pack_launch.cpp.o.d"
  "bench/fig05b_pack_launch"
  "bench/fig05b_pack_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05b_pack_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
