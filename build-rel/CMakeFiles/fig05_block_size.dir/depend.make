# Empty dependencies file for fig05_block_size.
# This may be replaced when dependencies are built.
