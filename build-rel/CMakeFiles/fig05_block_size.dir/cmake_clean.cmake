file(REMOVE_RECURSE
  "CMakeFiles/fig05_block_size.dir/bench/fig05_block_size.cpp.o"
  "CMakeFiles/fig05_block_size.dir/bench/fig05_block_size.cpp.o.d"
  "bench/fig05_block_size"
  "bench/fig05_block_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
