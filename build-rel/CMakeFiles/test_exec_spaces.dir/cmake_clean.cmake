file(REMOVE_RECURSE
  "CMakeFiles/test_exec_spaces.dir/tests/test_exec_spaces.cpp.o"
  "CMakeFiles/test_exec_spaces.dir/tests/test_exec_spaces.cpp.o.d"
  "tests/test_exec_spaces"
  "tests/test_exec_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
