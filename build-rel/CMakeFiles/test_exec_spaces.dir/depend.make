# Empty dependencies file for test_exec_spaces.
# This may be replaced when dependencies are built.
