# Empty dependencies file for fig06_amr_levels.
# This may be replaced when dependencies are built.
