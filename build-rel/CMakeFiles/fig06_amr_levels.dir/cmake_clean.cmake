file(REMOVE_RECURSE
  "CMakeFiles/fig06_amr_levels.dir/bench/fig06_amr_levels.cpp.o"
  "CMakeFiles/fig06_amr_levels.dir/bench/fig06_amr_levels.cpp.o.d"
  "bench/fig06_amr_levels"
  "bench/fig06_amr_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_amr_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
