file(REMOVE_RECURSE
  "CMakeFiles/fig10_memory_breakdown.dir/bench/fig10_memory_breakdown.cpp.o"
  "CMakeFiles/fig10_memory_breakdown.dir/bench/fig10_memory_breakdown.cpp.o.d"
  "bench/fig10_memory_breakdown"
  "bench/fig10_memory_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_memory_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
