file(REMOVE_RECURSE
  "CMakeFiles/platform_explorer.dir/examples/platform_explorer.cpp.o"
  "CMakeFiles/platform_explorer.dir/examples/platform_explorer.cpp.o.d"
  "examples/platform_explorer"
  "examples/platform_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
