file(REMOVE_RECURSE
  "CMakeFiles/tree_viz.dir/examples/tree_viz.cpp.o"
  "CMakeFiles/tree_viz.dir/examples/tree_viz.cpp.o.d"
  "examples/tree_viz"
  "examples/tree_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
