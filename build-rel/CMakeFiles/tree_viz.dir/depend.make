# Empty dependencies file for tree_viz.
# This may be replaced when dependencies are built.
