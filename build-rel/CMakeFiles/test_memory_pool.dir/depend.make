# Empty dependencies file for test_memory_pool.
# This may be replaced when dependencies are built.
