file(REMOVE_RECURSE
  "CMakeFiles/test_memory_pool.dir/tests/test_memory_pool.cpp.o"
  "CMakeFiles/test_memory_pool.dir/tests/test_memory_pool.cpp.o.d"
  "tests/test_memory_pool"
  "tests/test_memory_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
