file(REMOVE_RECURSE
  "CMakeFiles/test_solver.dir/tests/test_solver.cpp.o"
  "CMakeFiles/test_solver.dir/tests/test_solver.cpp.o.d"
  "tests/test_solver"
  "tests/test_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
