file(REMOVE_RECURSE
  "CMakeFiles/test_experiment.dir/tests/test_experiment.cpp.o"
  "CMakeFiles/test_experiment.dir/tests/test_experiment.cpp.o.d"
  "tests/test_experiment"
  "tests/test_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
