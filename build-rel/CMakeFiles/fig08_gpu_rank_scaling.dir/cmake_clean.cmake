file(REMOVE_RECURSE
  "CMakeFiles/fig08_gpu_rank_scaling.dir/bench/fig08_gpu_rank_scaling.cpp.o"
  "CMakeFiles/fig08_gpu_rank_scaling.dir/bench/fig08_gpu_rank_scaling.cpp.o.d"
  "bench/fig08_gpu_rank_scaling"
  "bench/fig08_gpu_rank_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_gpu_rank_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
