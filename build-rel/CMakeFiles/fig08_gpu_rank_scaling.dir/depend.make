# Empty dependencies file for fig08_gpu_rank_scaling.
# This may be replaced when dependencies are built.
