# Empty dependencies file for fig09_serial_kernel_breakdown.
# This may be replaced when dependencies are built.
