file(REMOVE_RECURSE
  "CMakeFiles/fig09_serial_kernel_breakdown.dir/bench/fig09_serial_kernel_breakdown.cpp.o"
  "CMakeFiles/fig09_serial_kernel_breakdown.dir/bench/fig09_serial_kernel_breakdown.cpp.o.d"
  "bench/fig09_serial_kernel_breakdown"
  "bench/fig09_serial_kernel_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_serial_kernel_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
