file(REMOVE_RECURSE
  "CMakeFiles/table3_gpu_microarch.dir/bench/table3_gpu_microarch.cpp.o"
  "CMakeFiles/table3_gpu_microarch.dir/bench/table3_gpu_microarch.cpp.o.d"
  "bench/table3_gpu_microarch"
  "bench/table3_gpu_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gpu_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
