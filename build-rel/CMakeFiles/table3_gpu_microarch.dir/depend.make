# Empty dependencies file for table3_gpu_microarch.
# This may be replaced when dependencies are built.
