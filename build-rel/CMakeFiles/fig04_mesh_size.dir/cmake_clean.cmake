file(REMOVE_RECURSE
  "CMakeFiles/fig04_mesh_size.dir/bench/fig04_mesh_size.cpp.o"
  "CMakeFiles/fig04_mesh_size.dir/bench/fig04_mesh_size.cpp.o.d"
  "bench/fig04_mesh_size"
  "bench/fig04_mesh_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_mesh_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
