# Empty dependencies file for fig04_mesh_size.
# This may be replaced when dependencies are built.
