/**
 * @file quickstart.cpp
 * Minimal end-to-end tour of the library:
 *  1. run a small *numeric* Parthenon-VIBE simulation (real WENO5/HLL/
 *     RK2 on an adaptive mesh) and watch the mesh track the ripple;
 *  2. run the same configuration in *counting* mode and evaluate the
 *     H100/Sapphire-Rapids performance model;
 *  3. print the figure of merit (zone-cycles/sec, paper §III-A).
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <iostream>

#include "core/experiment.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace vibe;

    std::cout << "== Parthenon-VIBE quickstart ==\n\n";

    // --- 1. A real (numeric) AMR simulation ---------------------------
    ExperimentSpec numeric_spec;
    numeric_spec.meshSize = 32;
    numeric_spec.blockSize = 8;
    numeric_spec.amrLevels = 2;
    numeric_spec.ncycles = 8;
    numeric_spec.numeric = true;
    numeric_spec.platform = PlatformConfig::cpu(4);

    std::cout << "running numeric WENO5/HLL/RK2 on a " << "32^3 mesh, "
              << "block 8^3, 2 AMR levels, 8 cycles...\n";
    ExperimentResult numeric = Experiment(numeric_spec).run();

    Table evolution("Mesh evolution (numeric run)");
    evolution.setHeader({"cycle", "blocks", "cells", "refined",
                         "derefined", "mass"});
    for (const auto& s : numeric.history)
        evolution.addRow({std::to_string(s.cycle),
                          std::to_string(s.nblocks),
                          std::to_string(s.interiorCells),
                          std::to_string(s.refined),
                          std::to_string(s.derefined),
                          formatSig(s.mass, 6)});
    evolution.print(std::cout);

    std::cout << "\ntotal zone-cycles: " << numeric.zoneCycles
              << ", ghost cells communicated: " << numeric.commCells
              << "\n\n";

    // --- 2. The paper's workhorse config under the platform model -----
    ExperimentSpec perf_spec;
    perf_spec.meshSize = 64;
    perf_spec.blockSize = 16;
    perf_spec.amrLevels = 3;
    perf_spec.ncycles = 10;
    perf_spec.numeric = false; // counting mode

    Table fom_table("Figure of merit (modeled platforms)");
    fom_table.setHeader({"platform", "FOM (zone-cycles/s)",
                         "serial fraction", "memory (GB)", "OOM"});
    for (const PlatformConfig& platform :
         {PlatformConfig::cpu(96), PlatformConfig::gpu(1, 1),
          PlatformConfig::gpu(1, 12)}) {
        ExperimentSpec spec = perf_spec;
        spec.platform = platform;
        ExperimentResult result = Experiment(spec).run();
        fom_table.addRow({platform.label(), formatSci(result.fom(), 2),
                          formatPercent(result.serialFraction()),
                          formatFixed(result.report.memory.totalGB, 1),
                          result.oom() ? "yes" : "no"});
    }
    fom_table.print(std::cout);

    std::cout << "\nSee bench/ for the per-figure reproduction "
                 "harnesses and EXPERIMENTS.md for paper-vs-model "
                 "comparisons.\n";
    return 0;
}
