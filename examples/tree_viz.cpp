/**
 * @file tree_viz.cpp
 * Renders the paper's Fig. 2: a 2-D quadtree over a 5x4 base grid of
 * MeshBlocks, refined two levels deep around a feature. Shows the
 * logical-level offset (a single root must be subdivided 3 times to
 * cover 5x4), the empty leaves outside the physical domain, and the
 * per-level leaf map after 2:1 balancing.
 *
 * Build & run:  ./build/examples/tree_viz
 */
#include <iostream>
#include <vector>

#include "mesh/block_tree.hpp"

int
main()
{
    using namespace vibe;

    std::cout << "== Fig. 2: tree-based AMR on a 5x4 base grid ==\n\n";

    TreeConfig config;
    config.ndim = 2;
    config.nbx1 = 5;
    config.nbx2 = 4;
    config.nbx3 = 1;
    config.maxLevel = 2;
    config.periodic1 = config.periodic2 = false;
    BlockTree tree(config);

    std::cout << "logical-level offset of the single-root view: "
              << tree.logicalLevelOffset()
              << " (an 8x8 root covers the 5x4 physical grid; the\n"
              << " remaining leaves are the 'X' cells outside the "
                 "physical domain)\n\n";

    // Refine around the domain's lower-left feature, twice.
    tree.refine({0, 1, 1, 0});
    tree.refine({1, 2, 2, 0}); // child of (1,1): forces 2:1 balancing

    std::cout << "leaves: " << tree.leafCount()
              << ", max level: " << tree.maxPresentLevel()
              << ", 2:1 balanced: "
              << (tree.checkBalance() ? "yes" : "no") << "\n\n";

    // Render the finest-resolution map: each character cell is one
    // level-2 quadrant; the digit is the level of the covering leaf.
    const int fine_nx = static_cast<int>(config.nbx1) << 2;
    const int fine_ny = static_cast<int>(config.nbx2) << 2;
    std::cout << "covering-leaf levels at finest resolution ('.' = "
                 "outside domain of the 8x8 logical root):\n\n";
    for (int y = fine_ny - 1; y >= -4; --y) {
        std::cout << "  ";
        for (int x = 0; x < 32; ++x) {
            if (x >= fine_nx || y < 0) {
                std::cout << (x < 32 && y >= -4 ? '.' : ' ');
                continue;
            }
            auto leaf = tree.coveringLeaf({2, x, y, 0});
            std::cout << (leaf ? static_cast<char>('0' + leaf->level)
                               : '?');
        }
        std::cout << "\n";
    }

    std::cout << "\nper-level leaf counts:\n";
    std::vector<int> counts(config.maxLevel + 1, 0);
    tree.forEachLeaf(
        [&](const LogicalLocation& loc) { ++counts[loc.level]; });
    for (std::size_t level = 0; level < counts.size(); ++level)
        std::cout << "  level " << level << ": " << counts[level]
                  << " MeshBlocks\n";

    std::cout << "\nneighbors of the refined corner leaf (2; 4,4):\n";
    if (tree.isLeaf({2, 4, 4, 0}))
        for (const auto& nb : tree.neighbors({2, 4, 4, 0}))
            std::cout << "  " << nb.loc.str() << " via (" << nb.ox1
                      << "," << nb.ox2 << ")\n";
    return 0;
}
