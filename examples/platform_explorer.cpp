/**
 * @file platform_explorer.cpp
 * Interactive what-if tool over the performance model: given a
 * workload (mesh size, MeshBlockSize, #AMR levels), sweep ranks-per-GPU
 * and CPU core counts, print FOM / serial fraction / memory, and find
 * the OOM wall — the paper's §IV-E rank-vs-memory tradeoff.
 *
 * Usage: platform_explorer [mesh] [block] [levels]
 *        (defaults: 64 16 3; e.g. `platform_explorer 128 8 3`
 *         reproduces the paper's workhorse configuration)
 */
#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "util/table.hpp"

int
main(int argc, char** argv)
{
    using namespace vibe;

    const int mesh = argc > 1 ? std::atoi(argv[1]) : 64;
    const int block = argc > 2 ? std::atoi(argv[2]) : 16;
    const int levels = argc > 3 ? std::atoi(argv[3]) : 3;

    std::cout << "== Platform explorer: mesh " << mesh << "^3, block "
              << block << "^3, " << levels << " AMR levels ==\n\n";

    ExperimentSpec base;
    base.meshSize = mesh;
    base.blockSize = block;
    base.amrLevels = levels;
    base.ncycles = 5;

    Table gpu_table("Single GPU: ranks-per-GPU sweep");
    gpu_table.setHeader({"ranks", "FOM", "serial frac", "memory (GB)",
                         "OOM"});
    double best_fom = 0;
    int best_r = 1;
    for (int r : {1, 2, 4, 6, 8, 12, 16, 24}) {
        auto spec = base;
        spec.platform = PlatformConfig::gpu(1, r);
        auto result = Experiment(spec).run();
        gpu_table.addRow({std::to_string(r), formatSci(result.fom(), 2),
                          formatPercent(result.serialFraction()),
                          formatFixed(result.report.memory.totalGB, 1),
                          result.oom() ? "yes" : "no"});
        if (!result.oom() && result.fom() > best_fom) {
            best_fom = result.fom();
            best_r = r;
        }
    }
    gpu_table.addNote("best non-OOM rank count: " +
                      std::to_string(best_r));
    gpu_table.print(std::cout);

    Table cpu_table("\nCPU: core-count sweep");
    cpu_table.setHeader({"cores", "FOM", "kernel (s)", "serial (s)"});
    for (int cores : {4, 16, 48, 96}) {
        auto spec = base;
        spec.platform = PlatformConfig::cpu(cores);
        auto result = Experiment(spec).run();
        cpu_table.addRow({std::to_string(cores),
                          formatSci(result.fom(), 2),
                          formatSeconds(result.report.kernelTime),
                          formatSeconds(result.report.serialTime)});
    }
    cpu_table.print(std::cout);

    std::cout << "\nTip: pass a workload on the command line, e.g.\n"
              << "  platform_explorer 128 8 3   # the paper's "
                 "serial-bound configuration\n";
    return 0;
}
