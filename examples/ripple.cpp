/**
 * @file ripple.cpp
 * The paper's §II-C analogy, simulated for real: a stone dropped into
 * still water. An outward radial velocity pulse (the ripple) evolves
 * under the vector inviscid Burgers equation with WENO5/HLL/RK2;
 * gradient tagging refines the mesh around the steepening front and
 * coarsens the calm interior; flux correction keeps total scalar mass
 * conserved to round-off while blocks split and merge.
 *
 * Build & run:  ./build/examples/ripple
 */
#include <cmath>
#include <iostream>

#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "pkg/burgers_package.hpp"
#include "driver/tagger.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace vibe;

    std::cout << "== Ripple: AMR tracking an expanding wavefront ==\n\n";

    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker);
    auto registry = makeBurgersRegistry(4);

    MeshConfig mesh_config;
    mesh_config.nx1 = mesh_config.nx2 = mesh_config.nx3 = 32;
    mesh_config.blockNx1 = mesh_config.blockNx2 =
        mesh_config.blockNx3 = 8;
    mesh_config.amrLevels = 2;
    Mesh mesh(mesh_config, registry, ctx);
    RankWorld world(4);

    BurgersConfig burgers_config;
    burgers_config.numScalars = 4;
    burgers_config.refineTol = 0.05;
    burgers_config.derefineTol = 0.015;
    BurgersPackage package(burgers_config);
    GradientTagger tagger(package);

    DriverConfig driver_config;
    driver_config.ncycles = 20;
    driver_config.derefineGap = 5;
    EvolutionDriver driver(mesh, package, world, tagger, driver_config);

    driver.initialize();
    // dt is estimated once at the top of every cycle (see the history
    // table below); before the first cycle it is just the config value.
    std::cout << "initial mesh: " << mesh.numBlocks()
              << " blocks (max level " << mesh.maxPresentLevel()
              << ")\n\n";
    driver.run();

    Table table("Evolution history");
    table.setHeader({"cycle", "time", "dt", "blocks", "refined",
                     "derefined", "moved", "mass"});
    for (const auto& s : driver.history()) {
        if (s.cycle % 2 != 0)
            continue; // print every other cycle
        table.addRow({std::to_string(s.cycle), formatSig(s.time, 3),
                      formatSig(s.dt, 3), std::to_string(s.nblocks),
                      std::to_string(s.refined),
                      std::to_string(s.derefined),
                      std::to_string(s.movedBlocks),
                      formatSig(s.mass, 10)});
    }
    table.print(std::cout);

    const double mass0 = driver.history().front().mass;
    const double mass1 = driver.history().back().mass;
    std::cout << "\nconservation: |mass drift| = "
              << formatSig(std::fabs(mass1 - mass0), 3)
              << " (flux correction + conservative restriction keep "
                 "this at round-off)\n";
    std::cout << "ghost cells communicated: " << driver.commCells()
              << ", flux-correction faces: " << driver.commFaces()
              << "\n";
    std::cout << "kernel launches recorded: "
              << profiler.totalLaunches()
              << ", device-memory footprint: "
              << formatBytes(static_cast<double>(tracker.currentBytes()))
              << "\n";
    return 0;
}
