/**
 * @file advect.cpp
 * Deck-driven runner: the full `<job> package` path from input file to
 * evolved mesh. Everything below the deck parse is package-agnostic —
 * the same lines drive Burgers or advection, with the package chosen
 * by name through the PackageRegistry exactly as Parthenon selects an
 * application. For the advection package the run is cross-checked
 * against the exact translated profile.
 *
 * Build & run:  ./build/examples/advect [deck]
 *               (default deck: examples/advection.in, with a built-in
 *               fallback when run from another directory)
 */
#include <cmath>
#include <fstream>
#include <iostream>

#include "comm/rank_world.hpp"
#include "driver/evolution_driver.hpp"
#include "driver/tagger.hpp"
#include "exec/execution_space.hpp"
#include "exec/kernel_profiler.hpp"
#include "exec/memory_tracker.hpp"
#include "pkg/advection_package.hpp"
#include "pkg/package_registry.hpp"
#include "util/table.hpp"

namespace {

/** The examples/advection.in deck, embedded so the binary works from
 *  any working directory. */
constexpr const char* kFallbackDeck = R"(
<job>
package = advection
<mesh>
nx1 = 32
<meshblock>
nx1 = 8
<amr>
num_levels = 2
derefine_gap = 2
<driver>
ncycles = 24
fixed_dt = 1.0
<advection>
ic = gaussian_blob
refine_tol = 0.1
derefine_tol = 0.03
)";

} // namespace

int
main(int argc, char** argv)
{
    using namespace vibe;

    const std::string deck_path =
        argc > 1 ? argv[1] : "examples/advection.in";
    ParameterInput pin;
    if (std::ifstream probe(deck_path); probe) {
        pin = ParameterInput::fromFile(deck_path);
        std::cout << "deck: " << deck_path << "\n";
    } else {
        pin = ParameterInput::fromString(kFallbackDeck);
        std::cout << "deck: built-in fallback ('" << deck_path
                  << "' not found)\n";
    }

    // Everything from here on names no PDE.
    auto package = PackageRegistry::fromDeck(pin);
    VariableRegistry registry = package->buildRegistry();
    MeshConfig mesh_config = MeshConfig::fromParams(pin);
    DriverConfig driver_config = DriverConfig::fromParams(pin);

    KernelProfiler profiler;
    MemoryTracker tracker;
    ExecContext ctx(ExecMode::Execute, &profiler, &tracker,
                    makeExecutionSpace(mesh_config.numThreads));
    Mesh mesh(mesh_config, registry, ctx);
    RankWorld world(2);
    GradientTagger tagger(*package);
    EvolutionDriver driver(mesh, *package, world, tagger,
                           driver_config);

    std::cout << "package: " << package->name() << " (variables:";
    for (const auto& v : registry.all())
        std::cout << " " << v.name << "[" << v.ncomp << "]";
    std::cout << ")\n\n";

    driver.initialize();
    driver.run();

    Table table("Evolution history");
    table.setHeader({"cycle", "time", "dt", "blocks", "refined",
                     "derefined", "mass"});
    for (const auto& s : driver.history()) {
        if (s.cycle % 3 != 0)
            continue;
        table.addRow({std::to_string(s.cycle), formatSig(s.time, 3),
                      formatSig(s.dt, 3), std::to_string(s.nblocks),
                      std::to_string(s.refined),
                      std::to_string(s.derefined),
                      formatSig(s.mass, 10)});
    }
    table.print(std::cout);

    if (driver.history().empty()) {
        std::cout << "\nno cycles ran (ncycles = 0?)\n";
        return 0;
    }
    const double mass0 = driver.history().front().mass;
    const double mass1 = driver.history().back().mass;
    std::cout << "\nconservation: |mass drift| = "
              << formatSig(std::fabs(mass1 - mass0), 3) << "\n";

    // Advection has an exact solution: report the discretization
    // error of the final state against the translated profile.
    if (const auto* advection =
            dynamic_cast<const AdvectionPackage*>(package.get())) {
        const BlockShape s = mesh.config().blockShape();
        double err = 0;
        std::int64_t cells = 0;
        for (const auto& block : mesh.blocks()) {
            const BlockGeometry& g = block->geom();
            for (int k = s.ks(); k <= s.ke(); ++k)
                for (int j = s.js(); j <= s.je(); ++j)
                    for (int i = s.is(); i <= s.ie(); ++i) {
                        const double exact = advection->analyticValue(
                            g.x1c(i - s.is()), g.x2c(j - s.js()),
                            g.x3c(k - s.ks()), driver.time(), s.ndim);
                        err += std::fabs(block->cons()(0, k, j, i) -
                                         exact);
                        ++cells;
                    }
        }
        std::cout << "analytic check: mean |phi - exact| = "
                  << formatSig(err / static_cast<double>(cells), 3)
                  << " after t = " << formatSig(driver.time(), 3)
                  << "\n";
    }
    std::cout << "kernel launches recorded: " << profiler.totalLaunches()
              << "\n";
    return 0;
}
