/**
 * @file trace_smoke.cpp
 * Observability smoke driver (the CI trace leg).
 *
 * Default mode runs a small numeric burgers simulation on 2 simulated
 * ranks x 2 pool threads with tracing, JSONL metrics, and periodic
 * checkpoints all enabled, writing the two obs artifacts to the paths
 * given on the command line; tools/obs/validate_trace.py then checks
 * them against the schema. The configuration is chosen to exercise
 * every span site: remesh, load-balance migration, fused boundary
 * exchange, rendezvous collectives, and the async checkpoint drain.
 *
 * --overhead mode is the release-bench guard for the "near-zero cost
 * when off" contract: it runs the same workload three times with
 * tracing off — asserting the figure of merit is stable to within a
 * generous noise bound (a hot-path regression such as accidentally
 * enabled recording or a per-span allocation shows up as a gross
 * outlier) — plus once with tracing on, asserting the simulation state
 * (conserved mass history) is bitwise identical either way.
 *
 * Usage:
 *   trace_smoke TRACE.json METRICS.jsonl
 *   trace_smoke --overhead
 */
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace {

vibe::ExperimentSpec
smokeSpec()
{
    vibe::ExperimentSpec spec;
    spec.meshSize = 16;
    spec.blockSize = 8;
    spec.amrLevels = 2;
    spec.ncycles = 6;
    spec.numeric = true;
    spec.package = "burgers";
    spec.numThreads = 2;
    spec.numRanks = 2;
    spec.platform = vibe::PlatformConfig::cpu(4);
    return spec;
}

int
runSmoke(const std::string& trace_path,
         const std::string& metrics_path)
{
    using namespace vibe;
    ExperimentSpec spec = smokeSpec();
    spec.tracePath = trace_path;
    spec.metricsPath = metrics_path;
    spec.checkpointEvery = 3;
    spec.checkpointPath = metrics_path + ".ckpt";
    ExperimentResult result = Experiment(spec).run();

    std::cout << "trace_smoke: " << result.history.size()
              << " cycles, " << result.finalBlocks << " final blocks, "
              << result.checkpointsWritten << " checkpoints\n"
              << "  trace:   " << trace_path << "\n"
              << "  metrics: " << metrics_path << "\n"
              << "  idle fraction: " << result.idle.idleFraction()
              << "\n";
    if (result.history.empty()) {
        std::cerr << "trace_smoke: run recorded no cycles\n";
        return 1;
    }
    return 0;
}

int
runOverhead()
{
    using namespace vibe;
    const ExperimentSpec spec = smokeSpec();

    std::vector<double> off_foms;
    std::vector<double> off_mass;
    for (int attempt = 0; attempt < 3; ++attempt) {
        const ExperimentResult result = Experiment(spec).run();
        off_foms.push_back(result.measuredFom());
        off_mass.push_back(result.history.back().mass);
    }

    ExperimentSpec on_spec = spec;
    on_spec.tracePath = "trace_smoke_overhead.trace.json";
    on_spec.metricsPath = "trace_smoke_overhead.metrics.jsonl";
    const ExperimentResult on = Experiment(on_spec).run();

    double fom_min = off_foms.front();
    double fom_max = off_foms.front();
    for (double fom : off_foms) {
        fom_min = fom < fom_min ? fom : fom_min;
        fom_max = fom > fom_max ? fom : fom_max;
    }
    std::cout << "trace_smoke --overhead: tracing-off FOM ["
              << fom_min << ", " << fom_max << "] zc/s, tracing-on "
              << on.measuredFom() << " zc/s\n";

    int failures = 0;
    // Noise bound: loaded CI machines jitter, but a hot-path
    // regression (recording while "off", allocation per span site)
    // costs integer factors, not percents.
    if (fom_min < 0.25 * fom_max) {
        std::cerr << "FAIL: tracing-off FOM spread exceeds noise "
                     "bound: ["
                  << fom_min << ", " << fom_max << "]\n";
        ++failures;
    }
    for (double mass : off_mass) {
        if (std::memcmp(&mass, &off_mass.front(), sizeof mass) != 0) {
            std::cerr << "FAIL: tracing-off runs disagree on mass\n";
            ++failures;
            break;
        }
    }
    const double on_mass = on.history.back().mass;
    if (std::memcmp(&on_mass, &off_mass.front(), sizeof on_mass) !=
        0) {
        std::cerr << "FAIL: tracing-on mass differs from tracing-off "
                     "(tracing must not perturb the simulation): "
                  << on_mass << " vs " << off_mass.front() << "\n";
        ++failures;
    }
    if (failures == 0)
        std::cout << "trace_smoke --overhead: OK\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc == 2 && std::string(argv[1]) == "--overhead")
        return runOverhead();
    if (argc == 3)
        return runSmoke(argv[1], argv[2]);
    std::cerr << "usage: trace_smoke TRACE.json METRICS.jsonl\n"
                 "       trace_smoke --overhead\n";
    return 2;
}
